#include "engine/local_plan.h"

#include <map>

namespace rex {

Result<std::unique_ptr<LocalPlan>> LocalPlan::Instantiate(
    const PlanSpec& spec, ExecContext* ctx) {
  REX_RETURN_NOT_OK(spec.Validate());
  auto plan = std::unique_ptr<LocalPlan>(new LocalPlan());

  for (const PlanNodeSpec& n : spec.nodes()) {
    std::unique_ptr<Operator> op;
    switch (n.type) {
      case PlanNodeSpec::Type::kScan:
        op = std::make_unique<ScanOp>(n.id, n.scan);
        break;
      case PlanNodeSpec::Type::kFilter:
        op = std::make_unique<FilterOp>(n.id, n.predicate);
        break;
      case PlanNodeSpec::Type::kProject:
        op = std::make_unique<ProjectOp>(n.id, n.exprs);
        break;
      case PlanNodeSpec::Type::kApplyFn:
        op = std::make_unique<ApplyFnOp>(n.id, n.fn_name);
        break;
      case PlanNodeSpec::Type::kHashJoin:
        op = std::make_unique<HashJoinOp>(n.id, n.join);
        break;
      case PlanNodeSpec::Type::kGroupBy:
        op = std::make_unique<GroupByOp>(n.id, n.group_by);
        break;
      case PlanNodeSpec::Type::kRehash:
        op = std::make_unique<RehashOp>(n.id, n.rehash);
        break;
      case PlanNodeSpec::Type::kFixpoint:
        op = std::make_unique<FixpointOp>(n.id, n.fixpoint);
        break;
      case PlanNodeSpec::Type::kUnion:
        op = std::make_unique<UnionOp>(n.id, n.union_inputs);
        break;
      case PlanNodeSpec::Type::kSink:
        op = std::make_unique<SinkOp>(n.id);
        break;
    }
    plan->ops_.push_back(std::move(op));
  }

  // Wire edges and derive expected punctuation counts from local fan-in.
  std::map<std::pair<int, int>, int> fan_in;  // (node, port) -> edge count
  for (const PlanNodeSpec& n : spec.nodes()) {
    for (const auto& e : n.inputs) {
      plan->ops_[static_cast<size_t>(e.from)]->AddOutput(
          plan->ops_[static_cast<size_t>(n.id)].get(), e.to_port);
      plan->edges_.push_back(Edge{e.from, n.id, e.to_port});
      fan_in[{n.id, e.to_port}] += 1;
    }
  }
  for (const auto& [key, count] : fan_in) {
    Operator* op = plan->ops_[static_cast<size_t>(key.first)].get();
    if (key.second >= op->num_ports()) {
      return Status::InvalidArgument(
          "edge targets port " + std::to_string(key.second) + " of node " +
          std::to_string(key.first) + " which has only " +
          std::to_string(op->num_ports()) + " ports");
    }
    op->SetExpectedPuncts(key.second, count);
  }

  for (auto& op : plan->ops_) {
    // Open after wiring: RehashOp overrides its network port's expectation.
    REX_RETURN_NOT_OK(op->Open(ctx));
    if (auto* fp = dynamic_cast<FixpointOp*>(op.get())) {
      plan->fixpoints_.push_back(fp);
    } else if (auto* sink = dynamic_cast<SinkOp*>(op.get())) {
      plan->sinks_.push_back(sink);
    } else if (auto* scan = dynamic_cast<ScanOp*>(op.get())) {
      plan->scans_.push_back(scan);
    }
  }
  return plan;
}

std::vector<LocalOperatorStats> LocalPlan::StatsSnapshot() const {
  std::vector<LocalOperatorStats> out;
  out.reserve(ops_.size());
  for (const auto& op : ops_) {
    LocalOperatorStats s;
    s.op_id = op->id();
    s.name = op->name();
    s.deltas_emitted = op->deltas_emitted();
    s.ports = op->port_stats();
    out.push_back(std::move(s));
  }
  return out;
}

Status LocalPlan::StartStratum(int stratum) {
  for (auto& op : ops_) REX_RETURN_NOT_OK(op->StartStratum(stratum));
  return Status::OK();
}

Status LocalPlan::ResetTransientState() {
  for (auto& op : ops_) REX_RETURN_NOT_OK(op->ResetTransientState());
  return Status::OK();
}

Status LocalPlan::OnMembershipChange() {
  for (auto& op : ops_) REX_RETURN_NOT_OK(op->OnMembershipChange());
  return Status::OK();
}

Status LocalPlan::RecoveryReload() {
  for (auto& op : ops_) REX_RETURN_NOT_OK(op->RecoveryReload());
  return Status::OK();
}

Status LocalPlan::MarkDeliveredStreamsClosed() {
  // Stream-once sources: scans have no input ports, so their closure is
  // decided by the punctuation kind they emitted in stratum 0.
  std::vector<bool> source_closed(ops_.size(), false);
  for (ScanOp* s : scans_) {
    if (s->closes_stream()) source_closed[static_cast<size_t>(s->id())] = true;
  }
  // Propagate to a fixed point. A fixpoint operator's recursive port never
  // closes, so closure stops at the loop — only the acyclic prefix (base
  // case, immutable join inputs) is marked.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Edge& e : edges_) {
      Operator* src = ops_[static_cast<size_t>(e.from)].get();
      Operator* dst = ops_[static_cast<size_t>(e.to)].get();
      const bool src_done =
          source_closed[static_cast<size_t>(e.from)] || src->AllPortsClosed();
      if (src_done && !dst->PortClosed(e.to_port)) {
        dst->MarkPortDelivered(e.to_port);
        changed = true;
      }
    }
    for (auto& op : ops_) {
      // A rehash whose local port closed has broadcast kEndOfStream to all
      // peers; its network port closed symmetrically on every worker.
      if (dynamic_cast<RehashOp*>(op.get()) != nullptr && op->PortClosed(0) &&
          !op->PortClosed(1)) {
        op->MarkPortDelivered(1);
        changed = true;
      }
    }
  }
  return Status::OK();
}

Status LocalPlan::Close() {
  for (auto& op : ops_) REX_RETURN_NOT_OK(op->Close());
  return Status::OK();
}

}  // namespace rex
