#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace rex {

std::vector<Tuple> GraphData::EdgeRows() const {
  std::vector<Tuple> rows;
  rows.reserve(edges.size());
  for (const auto& [src, dst] : edges) {
    rows.push_back(Tuple{Value(src), Value(dst)});
  }
  return rows;
}

std::vector<Tuple> GraphData::VertexRows() const {
  std::vector<Tuple> rows;
  rows.reserve(static_cast<size_t>(num_vertices));
  for (int64_t v = 0; v < num_vertices; ++v) rows.push_back(Tuple{Value(v)});
  return rows;
}

std::vector<int64_t> GraphData::OutDegrees() const {
  std::vector<int64_t> deg(static_cast<size_t>(num_vertices), 0);
  for (const auto& [src, dst] : edges) deg[static_cast<size_t>(src)] += 1;
  return deg;
}

GraphData GenerateRmatGraph(const GraphGenOptions& options) {
  GraphData g;
  g.num_vertices = options.num_vertices;
  Rng rng(options.seed);

  // Number of quadrant-recursion levels covering num_vertices.
  int levels = 1;
  while ((int64_t{1} << levels) < options.num_vertices) ++levels;

  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(options.num_edges) * 2);
  g.edges.reserve(static_cast<size_t>(options.num_edges));

  const double ab = options.a + options.b;
  const double abc = ab + options.c;
  int64_t attempts = 0;
  const int64_t max_attempts = options.num_edges * 20;
  while (static_cast<int64_t>(g.edges.size()) < options.num_edges &&
         attempts++ < max_attempts) {
    int64_t src = 0, dst = 0;
    for (int l = 0; l < levels; ++l) {
      double r = rng.NextDouble();
      src <<= 1;
      dst <<= 1;
      if (r < options.a) {
        // top-left: neither bit set
      } else if (r < ab) {
        dst |= 1;
      } else if (r < abc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    if (src >= options.num_vertices || dst >= options.num_vertices) continue;
    if (src == dst) continue;
    uint64_t key = (static_cast<uint64_t>(src) << 32) |
                   static_cast<uint64_t>(dst);
    if (!seen.insert(key).second) continue;
    g.edges.emplace_back(src, dst);
  }

  // Guarantee out-degree >= 1: dangling vertices get a wrap edge, so
  // PageRank mass is conserved and SSSP frontiers cannot strand.
  std::vector<bool> has_out(static_cast<size_t>(options.num_vertices), false);
  for (const auto& [src, dst] : g.edges) {
    has_out[static_cast<size_t>(src)] = true;
  }
  for (int64_t v = 0; v < options.num_vertices; ++v) {
    if (!has_out[static_cast<size_t>(v)]) {
      g.edges.emplace_back(v, (v + 1) % options.num_vertices);
    }
  }
  return g;
}

GraphData GenerateDbpediaLike(double scale, uint64_t seed) {
  GraphGenOptions opt;
  opt.num_vertices = std::max<int64_t>(64, static_cast<int64_t>(33000 * scale));
  opt.num_edges = static_cast<int64_t>(480000 * scale);
  opt.a = 0.57;
  opt.b = 0.19;
  opt.c = 0.19;
  opt.seed = seed;
  return GenerateRmatGraph(opt);
}

GraphData GenerateTwitterLike(double scale, uint64_t seed) {
  GraphGenOptions opt;
  opt.num_vertices = std::max<int64_t>(64, static_cast<int64_t>(41000 * scale));
  opt.num_edges = static_cast<int64_t>(1400000 * scale);
  opt.a = 0.65;  // heavier skew: celebrity-follower structure
  opt.b = 0.15;
  opt.c = 0.15;
  opt.seed = seed;
  return GenerateRmatGraph(opt);
}

std::vector<std::pair<double, double>> GeoClusterCenters(
    const GeoGenOptions& options) {
  Rng rng(options.seed * 31 + 5);
  std::vector<std::pair<double, double>> centers;
  centers.reserve(static_cast<size_t>(options.num_clusters));
  for (int c = 0; c < options.num_clusters; ++c) {
    // Well-separated grid-jittered centers in [-10, 10]^2.
    centers.emplace_back(rng.NextDouble(-10, 10), rng.NextDouble(-10, 10));
  }
  return centers;
}

std::vector<Tuple> GenerateGeoPoints(const GeoGenOptions& options) {
  Rng rng(options.seed);
  auto centers = GeoClusterCenters(options);

  const int64_t copies = 1 + options.enlargement;
  const int64_t total = options.num_base_points * copies;

  // Random permutation of ids so "pid < k" samples uniformly.
  std::vector<int64_t> ids(static_cast<size_t>(total));
  for (int64_t i = 0; i < total; ++i) ids[static_cast<size_t>(i)] = i;
  for (int64_t i = total - 1; i > 0; --i) {
    std::swap(ids[static_cast<size_t>(i)],
              ids[static_cast<size_t>(rng.NextBelow(
                  static_cast<uint64_t>(i + 1)))]);
  }

  std::vector<Tuple> rows;
  rows.reserve(static_cast<size_t>(total));
  int64_t next = 0;
  for (int64_t b = 0; b < options.num_base_points; ++b) {
    const auto& [cx, cy] =
        centers[static_cast<size_t>(b) % centers.size()];
    const double x = cx + options.cluster_stddev * rng.NextGaussian();
    const double y = cy + options.cluster_stddev * rng.NextGaussian();
    for (int64_t j = 0; j < copies; ++j) {
      const double jx =
          j == 0 ? 0.0 : options.jitter_stddev * rng.NextGaussian();
      const double jy =
          j == 0 ? 0.0 : options.jitter_stddev * rng.NextGaussian();
      rows.push_back(Tuple{Value(ids[static_cast<size_t>(next++)]),
                           Value(x + jx), Value(y + jy)});
    }
  }
  return rows;
}

std::vector<Tuple> GenerateLineitem(const LineitemGenOptions& options) {
  Rng rng(options.seed);
  std::vector<Tuple> rows;
  rows.reserve(static_cast<size_t>(options.num_rows));
  int64_t orderkey = 1;
  int linenumber = 1;
  for (int64_t i = 0; i < options.num_rows; ++i) {
    if (linenumber > 7 || rng.NextBool(0.3)) {
      ++orderkey;
      linenumber = 1;
    }
    const double quantity = 1 + static_cast<double>(rng.NextBelow(50));
    const double price = quantity * rng.NextDouble(900.0, 11000.0) / 10.0;
    const double tax = 0.01 * static_cast<double>(rng.NextBelow(9));
    rows.push_back(Tuple{Value(orderkey), Value(int64_t{linenumber}),
                         Value(quantity), Value(price), Value(tax)});
    ++linenumber;
  }
  return rows;
}

}  // namespace rex
