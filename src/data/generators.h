// Deterministic synthetic dataset generators standing in for the paper's
// datasets (see DESIGN.md "Substitutions"):
//
//   DBPedia link graph   -> RMAT scale-free graph, moderate skew
//   Twitter follower     -> RMAT with heavier skew and higher edge/vertex
//                           ratio
//   DBPedia geo points   -> mixture-of-Gaussians 2-D points, optionally
//                           "enlarged" by jittered copies (the paper's
//                           simulated 1000 extra points per coordinate)
//   TPC-H lineitem (10GB)-> lineitem-like rows (linenumber, tax, ...)
//
// All generators are pure functions of their seed.
#ifndef REX_DATA_GENERATORS_H_
#define REX_DATA_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/tuple.h"

namespace rex {

struct GraphData {
  int64_t num_vertices = 0;
  /// (src, dst) pairs; every vertex has out-degree >= 1 (dangling vertices
  /// get a wrap-around edge so PageRank mass is conserved).
  std::vector<std::pair<int64_t, int64_t>> edges;

  /// Rows for a (src:int, dst:int) edge table.
  std::vector<Tuple> EdgeRows() const;
  /// Rows for a (v:int) vertex table.
  std::vector<Tuple> VertexRows() const;
  std::vector<int64_t> OutDegrees() const;
};

struct GraphGenOptions {
  int64_t num_vertices = 1000;
  int64_t num_edges = 8000;
  /// RMAT quadrant probabilities; heavier a = heavier skew.
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  uint64_t seed = 0x9e1u;
};

/// R-MAT recursive-quadrant generator (deduplicated, no self loops except
/// the degree-1 guarantee wrap edges).
GraphData GenerateRmatGraph(const GraphGenOptions& options);

/// "DBPedia-like": 3.3M vertices / 48M edges in the paper; scaled by
/// `scale` (scale=1.0 gives ~33K vertices / ~480K edges so benches run in
/// seconds; the ratio edge/vertex ≈ 14.5 matches the paper's dataset).
GraphData GenerateDbpediaLike(double scale = 1.0, uint64_t seed = 17);

/// "Twitter-like": heavier tail, edge/vertex ≈ 34 (1.4B / 41M).
GraphData GenerateTwitterLike(double scale = 1.0, uint64_t seed = 23);

struct GeoGenOptions {
  int64_t num_base_points = 1000;
  int num_clusters = 8;
  /// Jittered copies per base point (the paper enlarges 328K coordinates
  /// to 382M tuples this way).
  int enlargement = 0;
  double cluster_stddev = 0.5;
  double jitter_stddev = 0.01;
  uint64_t seed = 0x6e07u;
};

/// Rows for a (pid:int, x:double, y:double) geo point table, drawn from a
/// mixture of Gaussians. Point ids are a random permutation so "pid < k"
/// is a uniform random sample (used for centroid seeding).
std::vector<Tuple> GenerateGeoPoints(const GeoGenOptions& options);
/// The ground-truth cluster centers used by the mixture.
std::vector<std::pair<double, double>> GeoClusterCenters(
    const GeoGenOptions& options);

struct LineitemGenOptions {
  int64_t num_rows = 100000;
  uint64_t seed = 0x7c9u;
};

/// Rows for a lineitem-like table:
/// (orderkey:int, linenumber:int, quantity:double, extendedprice:double,
///  tax:double). linenumber is 1..7 (so "linenumber > 1" passes ~6/7).
std::vector<Tuple> GenerateLineitem(const LineitemGenOptions& options);

}  // namespace rex

#endif  // REX_DATA_GENERATORS_H_
