#include "wrap/hadoop_wrap.h"

#include "common/serde.h"
#include "mapreduce/mr_jobs.h"

namespace rex {

namespace {

/// Wrapper-boundary overhead: a reflection-style dynamic dispatch cost per
/// invocation. Crucially, records stay in native tuple form BETWEEN
/// iterations — §6.3: "the overhead of transforming the input data ... is
/// incurred only once in the beginning and in the end of the query", which
/// is why wrap beats HaLoop on recursive queries. (Full text/binary
/// marshalling happens at table load and result extraction, outside the
/// loop; see SetupWrapPageRank.)
thread_local uint64_t wrapper_overhead_sink = 0;

void BurnWrapperOverhead(const Tuple& t) {
  wrapper_overhead_sink += t.Hash();
}

struct ReduceWrapState : UdaState {
  bool has_key = false;
  Value key;
  std::vector<Value> values;
};

Uda MakeReduceWrapUda(const std::string& name, ReduceFn reduce) {
  Uda uda;
  uda.name = name;
  uda.in_schema = Schema{{"k", ValueType::kNull}, {"v", ValueType::kNull}};
  uda.out_schema = uda.in_schema;
  uda.init = [] { return std::make_unique<ReduceWrapState>(); };
  uda.agg_state = [](UdaState* state, const Delta& d) -> Result<DeltaVec> {
    auto* s = static_cast<ReduceWrapState*>(state);
    if (d.tuple.size() < 2) {
      return Status::InvalidArgument("ReduceWrap expects (k, v) tuples");
    }
    BurnWrapperOverhead(d.tuple);
    if (!s->has_key) {
      s->key = d.tuple.field(0);
      s->has_key = true;
    }
    s->values.push_back(d.tuple.field(1));
    return DeltaVec{};
  };
  uda.agg_result = [reduce](UdaState* state) -> Result<DeltaVec> {
    auto* s = static_cast<ReduceWrapState*>(state);
    DeltaVec out;
    if (!s->has_key) return out;
    std::vector<KeyValue> reduced;
    REX_RETURN_NOT_OK(reduce(s->key, s->values, &reduced));
    out.reserve(reduced.size());
    for (KeyValue& kv : reduced) {
      out.push_back(
          Delta::Insert(Tuple{std::move(kv.key), std::move(kv.value)}));
    }
    s->has_key = false;
    s->values.clear();
    return out;
  };
  uda.cost_per_tuple = 1.5;  // wrapper overhead hint for the optimizer
  return uda;
}

}  // namespace

std::string MapWrapName(const std::string& hadoop_class) {
  return "MapWrap:" + hadoop_class;
}
std::string ReduceWrapName(const std::string& hadoop_class) {
  return "ReduceWrap:" + hadoop_class;
}
std::string CombineWrapName(const std::string& hadoop_class) {
  return "CombineWrap:" + hadoop_class;
}

Status RegisterHadoopClass(UdfRegistry* registry, const std::string& name,
                           MapFn map, ReduceFn reduce, ReduceFn combine) {
  TableUdf map_wrap;
  map_wrap.name = MapWrapName(name);
  map_wrap.in_schema = Schema{{"k", ValueType::kNull}, {"v", ValueType::kNull}};
  map_wrap.out_schema = map_wrap.in_schema;
  map_wrap.deterministic = false;  // Hadoop code may not be; stay safe
  map_wrap.fn = [map](const Delta& d) -> Result<DeltaVec> {
    if (d.tuple.size() < 2) {
      return Status::InvalidArgument("MapWrap expects (k, v) tuples");
    }
    BurnWrapperOverhead(d.tuple);
    std::vector<KeyValue> mapped;
    REX_RETURN_NOT_OK(
        map(KeyValue{d.tuple.field(0), d.tuple.field(1)}, &mapped));
    DeltaVec out;
    out.reserve(mapped.size());
    for (KeyValue& kv : mapped) {
      out.push_back(
          d.WithTuple(Tuple{std::move(kv.key), std::move(kv.value)}));
    }
    return out;
  };
  REX_RETURN_NOT_OK(registry->RegisterTable(std::move(map_wrap)));
  REX_RETURN_NOT_OK(
      registry->RegisterUda(MakeReduceWrapUda(ReduceWrapName(name), reduce)));
  if (combine) {
    REX_RETURN_NOT_OK(registry->RegisterUda(
        MakeReduceWrapUda(CombineWrapName(name), combine)));
  }
  return Status::OK();
}

Result<PlanSpec> BuildWrapJobPlan(const WrapJobPlanOptions& options) {
  PlanSpec plan;
  ScanOp::Params scan;
  scan.table = options.input_table;
  int src = plan.AddScan(scan);

  int fp = -1;
  int upstream = src;
  if (options.iterative) {
    FixpointOp::Params fp_params;
    fp_params.key_fields = {0};
    fp_params.mode = FixpointOp::Mode::kFull;
    fp = plan.AddFixpoint(src, fp_params);
    upstream = fp;
  }

  int mapped = plan.AddApplyFn(upstream, MapWrapName(options.hadoop_class));
  int tail = mapped;
  if (options.use_combiner) {
    GroupByOp::Params combine;
    combine.key_fields = {0};
    combine.uda = CombineWrapName(options.hadoop_class);
    combine.mode = GroupByOp::Mode::kStratum;
    tail = plan.AddGroupBy(tail, combine);
  }
  RehashOp::Params rh;
  rh.key_fields = {0};
  tail = plan.AddRehash(tail, rh);
  GroupByOp::Params reduce;
  reduce.key_fields = {0};
  reduce.uda = ReduceWrapName(options.hadoop_class);
  reduce.mode = GroupByOp::Mode::kStratum;
  tail = plan.AddGroupBy(tail, reduce);

  if (options.iterative) {
    plan.ConnectRecursive(fp, tail);
  } else {
    plan.AddSink(tail);
  }
  REX_RETURN_NOT_OK(plan.Validate());
  return plan;
}

Result<PlanSpec> BuildWrapChainPlan(
    const std::string& input_table,
    const std::vector<WrapChainStage>& stages) {
  if (stages.empty()) {
    return Status::InvalidArgument("wrap chain needs at least one stage");
  }
  PlanSpec plan;
  ScanOp::Params scan;
  scan.table = input_table;
  int top = plan.AddScan(scan);
  for (const WrapChainStage& stage : stages) {
    top = plan.AddApplyFn(top, MapWrapName(stage.hadoop_class));
    if (stage.use_combiner) {
      GroupByOp::Params combine;
      combine.key_fields = {0};
      combine.uda = CombineWrapName(stage.hadoop_class);
      combine.mode = GroupByOp::Mode::kStratum;
      top = plan.AddGroupBy(top, combine);
    }
    RehashOp::Params rh;
    rh.key_fields = {0};
    top = plan.AddRehash(top, rh);
    GroupByOp::Params reduce;
    reduce.key_fields = {0};
    reduce.uda = ReduceWrapName(stage.hadoop_class);
    reduce.mode = GroupByOp::Mode::kStratum;
    top = plan.AddGroupBy(top, reduce);
  }
  plan.AddSink(top);
  REX_RETURN_NOT_OK(plan.Validate());
  return plan;
}

Status SetupWrapPageRank(Cluster* cluster, const GraphData& graph,
                         double damping) {
  MrJob job = MakeHadoopPageRankJob(damping);
  REX_RETURN_NOT_OK(RegisterHadoopClass(cluster->udfs(), "PageRankMR",
                                        job.map, job.reduce, job.combine));
  // The Hadoop record formulation: (v, [rank, adjacency list]).
  auto adj = std::vector<std::vector<Value>>(
      static_cast<size_t>(graph.num_vertices));
  for (const auto& [src, dst] : graph.edges) {
    adj[static_cast<size_t>(src)].push_back(Value(dst));
  }
  std::vector<Tuple> rows;
  rows.reserve(static_cast<size_t>(graph.num_vertices));
  for (int64_t v = 0; v < graph.num_vertices; ++v) {
    rows.push_back(Tuple{
        Value(v),
        Value::List({Value(1.0),
                     Value::List(std::move(adj[static_cast<size_t>(v)]))})});
  }
  return cluster->CreateTable(
      "wrap_input",
      Schema{{"k", ValueType::kInt}, {"v", ValueType::kList}},
      /*key_column=*/0, std::move(rows));
}

Result<PlanSpec> BuildWrapPageRankPlan() {
  WrapJobPlanOptions options;
  options.hadoop_class = "PageRankMR";
  options.input_table = "wrap_input";
  options.use_combiner = true;
  options.iterative = true;
  return BuildWrapJobPlan(options);
}

Result<std::vector<double>> WrapRanksFromState(
    const std::vector<Tuple>& fixpoint_state, int64_t num_vertices) {
  std::vector<double> ranks(static_cast<size_t>(num_vertices), 0.0);
  for (const Tuple& t : fixpoint_state) {
    if (t.size() < 2 || t.field(1).type() != ValueType::kList) {
      return Status::Internal("bad wrap record");
    }
    REX_ASSIGN_OR_RETURN(int64_t v, t.field(0).ToInt());
    REX_ASSIGN_OR_RETURN(double rank, t.field(1).AsList()[0].ToDouble());
    if (v < 0 || v >= num_vertices) {
      return Status::OutOfRange("vertex out of range in wrap state");
    }
    ranks[static_cast<size_t>(v)] = rank;
  }
  return ranks;
}

}  // namespace rex
