// Executing native Hadoop code inside REX (§4.4) — the paper's "wrap"
// configuration.
//
// Hadoop mapper/reducer/combiner classes (here: the same MapFn/ReduceFn
// functors the mini-MapReduce engine runs) are registered by class name and
// invoked through specially designed wrapper UDFs/UDAs:
//
//   SELECT ReduceWrap('ReduceClass',
//          MapWrap('MapClass', k, v).{k, v}).{k, v}
//   FROM InputTable GROUP BY MapWrap('MapClass', k, v).k
//
// MapWrap is a table-valued UDF around the map class; ReduceWrap is a UDA
// whose per-group state buffers the reducer's input values. Wrapping incurs
// the paper's formatting overhead: every tuple crossing the wrapper
// boundary is marshalled to Hadoop's record representation and back (we
// marshal through the binary serde — the role text formatting plays in the
// original; see DESIGN.md).
//
// Iterative Hadoop jobs become recursive REX queries: a kFull fixpoint
// re-feeds the whole record set through MapWrap -> rehash -> ReduceWrap
// each stratum, exactly like a driver program resubmitting the job — but
// without per-job startup, sort-based shuffle, or HDFS materialization,
// which is where wrap's speedup over Hadoop/HaLoop comes from (§6.3).
#ifndef REX_WRAP_HADOOP_WRAP_H_
#define REX_WRAP_HADOOP_WRAP_H_

#include <string>

#include "cluster/cluster.h"
#include "data/generators.h"
#include "engine/plan_spec.h"
#include "mapreduce/mr_engine.h"

namespace rex {

/// Registers MapWrap:<class> as a table UDF and ReduceWrap:<class> /
/// CombineWrap:<class> as UDAs in `registry`. The combiner may be null.
Status RegisterHadoopClass(UdfRegistry* registry, const std::string& name,
                           MapFn map, ReduceFn reduce,
                           ReduceFn combine = nullptr);

/// Wrapper registry names.
std::string MapWrapName(const std::string& hadoop_class);
std::string ReduceWrapName(const std::string& hadoop_class);
std::string CombineWrapName(const std::string& hadoop_class);

struct WrapJobPlanOptions {
  std::string hadoop_class;  // registered via RegisterHadoopClass
  std::string input_table;   // (k, v) rows, key column 0
  bool use_combiner = false;
  /// Recursive wrap job: loop the reduce output back through the mapper
  /// until the driver stops it (iterative Hadoop execution, §4.4).
  bool iterative = false;
};

/// Builds the RQL template's physical plan: scan -> [fixpoint ->] MapWrap
/// -> [CombineWrap ->] rehash(k) -> ReduceWrap [-> loop | -> sink].
Result<PlanSpec> BuildWrapJobPlan(const WrapJobPlanOptions& options);

/// One stage of a chained Hadoop workflow (§4.4: "chained or branched jobs
/// can be expressed as nested subqueries within a compound driver query").
struct WrapChainStage {
  std::string hadoop_class;
  bool use_combiner = false;
};

/// Chains N wrapped jobs: each stage's reduce output feeds the next
/// stage's mapper directly — no HDFS materialization between jobs, one of
/// wrap's structural advantages over a real Hadoop driver program.
Result<PlanSpec> BuildWrapChainPlan(const std::string& input_table,
                                    const std::vector<WrapChainStage>& stages);

/// PageRank from the unmodified Hadoop-formulation mapper/reducer running
/// inside REX (the REX-wrap series of Figs 4 and 6). Registers the class
/// and loads the (v, [rank, adjacency]) record table "wrap_input".
Status SetupWrapPageRank(Cluster* cluster, const GraphData& graph,
                         double damping = 0.85);
Result<PlanSpec> BuildWrapPageRankPlan();

/// Extracts ranks from a wrap-PageRank run's fixpoint state.
Result<std::vector<double>> WrapRanksFromState(
    const std::vector<Tuple>& fixpoint_state, int64_t num_vertices);

}  // namespace rex

#endif  // REX_WRAP_HADOOP_WRAP_H_
