// A miniature Hadoop: the general-purpose cloud baseline the paper
// evaluates against (§2, §6).
//
// Faithful to the cost structure that matters for the comparison:
//  - per-job startup cost (the JVM/task-scheduling overhead that dominates
//    short iterations),
//  - map -> combine -> partition -> SORT -> disk-materialized shuffle ->
//    merge -> reduce,
//  - per-job output materialization (the checkpoint-everything durability
//    model),
//  - stateless tasks: every iteration reprocesses its whole input.
//
// Tasks run in parallel on a thread pool sized like the simulated cluster.
#ifndef REX_MAPREDUCE_MR_ENGINE_H_
#define REX_MAPREDUCE_MR_ENGINE_H_

#include <functional>
#include <optional>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/value.h"

namespace rex {

/// A Hadoop-style record.
struct KeyValue {
  Value key;
  Value value;
};

/// map(k, v) -> [(k', v')]
using MapFn =
    std::function<Status(const KeyValue& record, std::vector<KeyValue>* out)>;
/// reduce(k, [v]) -> [(k', v')]; also the combiner signature.
using ReduceFn = std::function<Status(
    const Value& key, const std::vector<Value>& values,
    std::vector<KeyValue>* out)>;

struct MrJob {
  MapFn map;
  ReduceFn reduce;
  /// Optional pre-aggregation before the shuffle (Hadoop combiner).
  ReduceFn combine;
  const char* name = "job";
};

struct MrConfig {
  int num_map_tasks = 4;
  int num_reduce_tasks = 4;
  /// Concurrently running tasks (the cluster's total cores).
  int parallelism = 4;
  /// Fixed per-job overhead, busy-executed (task scheduling, JVM spin-up;
  /// Hadoop's "substantial startup and tear-down overhead", §6.7).
  double startup_cost_ms = 20.0;
  /// Write map outputs and job outputs through temp files (the shuffle
  /// and HDFS materialization). Disable only for unit tests.
  bool materialize_to_disk = true;
  /// Encode each job's HDFS output in text form and parse it back on the
  /// next job's input — Hadoop's default TextInputFormat reality, and the
  /// per-job-boundary transformation cost §6.3 identifies as the reason
  /// REX-wrap outruns HaLoop on recursive queries.
  bool text_io = true;
  /// Metrics sink (may be null): mr.shuffle_bytes, mr.map_input_records,
  /// mr.reduce_input_records, mr.hdfs_bytes, mr.jobs.
  MetricsRegistry* metrics = nullptr;
};

namespace mr_metrics {
inline constexpr const char kJobs[] = "mr.jobs";
inline constexpr const char kHdfsBytes[] = "mr.hdfs_bytes";
}  // namespace mr_metrics

/// Executes one MapReduce job over `input`, returning the reduce output.
Result<std::vector<KeyValue>> RunMrJob(const MrJob& job,
                                       const std::vector<KeyValue>& input,
                                       const MrConfig& config);

/// Helpers for building record lists.
std::vector<KeyValue> MakeRecords(std::vector<std::pair<Value, Value>> kvs);

}  // namespace rex

#endif  // REX_MAPREDUCE_MR_ENGINE_H_
