#include "mapreduce/mr_jobs.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_map>

namespace rex {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Snapshot-diff of the per-iteration metrics.
class IterationMeter {
 public:
  explicit IterationMeter(MetricsRegistry* metrics) : metrics_(metrics) {}

  void Begin() {
    start_ = std::chrono::steady_clock::now();
    shuffle_ = metrics_->Value(metrics::kShuffleBytes);
    inputs_ = metrics_->Value(metrics::kMapInputRecords);
  }

  MrIterationReport End(int iteration) {
    MrIterationReport r;
    r.iteration = iteration;
    r.seconds = SecondsSince(start_);
    r.shuffle_bytes = metrics_->Value(metrics::kShuffleBytes) - shuffle_;
    r.map_input_records =
        metrics_->Value(metrics::kMapInputRecords) - inputs_;
    return r;
  }

 private:
  MetricsRegistry* metrics_;
  std::chrono::steady_clock::time_point start_;
  int64_t shuffle_ = 0;
  int64_t inputs_ = 0;
};

using Adjacency = std::unordered_map<int64_t, std::vector<int64_t>>;

std::shared_ptr<Adjacency> BuildAdjacency(const GraphData& graph) {
  auto adj = std::make_shared<Adjacency>();
  for (const auto& [src, dst] : graph.edges) (*adj)[src].push_back(dst);
  return adj;
}

}  // namespace

// ------------------------------------------------------------- PageRank --

MrJob MakeHadoopPageRankJob(double damping) {
  const double teleport = 1.0 - damping;
  MrJob job;
  job.name = "pagerank-hadoop";
  // Classic stateless formulation: the adjacency list rides in every
  // record and is re-shuffled every iteration.
  job.map = [damping](const KeyValue& rec,
                      std::vector<KeyValue>* out) -> Status {
    const auto& payload = rec.value.AsList();
    REX_ASSIGN_OR_RETURN(double rank, payload[0].ToDouble());
    const auto& nbrs = payload[1].AsList();
    out->push_back(KeyValue{rec.key, payload[1]});  // structure marker
    if (!nbrs.empty()) {
      const double share = damping * rank / static_cast<double>(nbrs.size());
      for (const Value& n : nbrs) {
        out->push_back(KeyValue{n, Value(share)});
      }
    }
    return Status::OK();
  };
  job.reduce = [teleport](const Value& key, const std::vector<Value>& values,
                          std::vector<KeyValue>* out) -> Status {
    double sum = 0;
    Value structure = Value::List({});
    for (const Value& v : values) {
      if (v.type() == ValueType::kList) {
        structure = v;
      } else {
        REX_ASSIGN_OR_RETURN(double d, v.ToDouble());
        sum += d;
      }
    }
    out->push_back(
        KeyValue{key, Value::List({Value(teleport + sum), structure})});
    return Status::OK();
  };
  job.combine = [](const Value& key, const std::vector<Value>& values,
                   std::vector<KeyValue>* out) -> Status {
    double sum = 0;
    bool has_sum = false;
    for (const Value& v : values) {
      if (v.type() == ValueType::kList) {
        out->push_back(KeyValue{key, v});
      } else {
        REX_ASSIGN_OR_RETURN(double d, v.ToDouble());
        sum += d;
        has_sum = true;
      }
    }
    if (has_sum) out->push_back(KeyValue{key, Value(sum)});
    return Status::OK();
  };
  return job;
}

Result<MrPageRankRun> RunMrPageRank(const GraphData& graph,
                                    const MrPageRankOptions& options) {
  MrConfig config = options.config;
  MetricsRegistry local_metrics;
  if (config.metrics == nullptr) config.metrics = &local_metrics;
  const double damping = options.damping;
  const double teleport = 1.0 - damping;
  MrPageRankRun run;
  const auto t_total = std::chrono::steady_clock::now();

  auto adj = BuildAdjacency(graph);  // zero-time for HaLoop cache; Hadoop
                                     // carries it in the records instead

  std::vector<KeyValue> state;  // Hadoop: (v, [rank, adjList]);
                                // HaLoop: (v, rank)
  state.reserve(static_cast<size_t>(graph.num_vertices));
  for (int64_t v = 0; v < graph.num_vertices; ++v) {
    if (options.haloop) {
      state.push_back(KeyValue{Value(v), Value(1.0)});
    } else {
      std::vector<Value> nbrs;
      auto it = adj->find(v);
      if (it != adj->end()) {
        for (int64_t n : it->second) nbrs.push_back(Value(n));
      }
      state.push_back(KeyValue{
          Value(v), Value::List({Value(1.0), Value::List(nbrs)})});
    }
  }

  MrJob job;
  job.name = options.haloop ? "pagerank-haloop" : "pagerank-hadoop";
  if (options.haloop) {
    // Mutable-only stage: adjacency comes from the (zero-cost) reducer
    // input cache, so only ranks are scanned and only contributions are
    // shuffled.
    job.map = [adj, damping](const KeyValue& rec,
                             std::vector<KeyValue>* out) -> Status {
      REX_ASSIGN_OR_RETURN(int64_t v, rec.key.ToInt());
      REX_ASSIGN_OR_RETURN(double rank, rec.value.ToDouble());
      auto it = adj->find(v);
      if (it != adj->end() && !it->second.empty()) {
        const double share =
            damping * rank / static_cast<double>(it->second.size());
        for (int64_t n : it->second) {
          out->push_back(KeyValue{Value(n), Value(share)});
        }
      }
      out->push_back(KeyValue{rec.key, Value(0.0)});  // keep v alive
      return Status::OK();
    };
    job.reduce = [teleport](const Value& key,
                            const std::vector<Value>& values,
                            std::vector<KeyValue>* out) -> Status {
      double sum = 0;
      for (const Value& v : values) {
        REX_ASSIGN_OR_RETURN(double d, v.ToDouble());
        sum += d;
      }
      out->push_back(KeyValue{key, Value(teleport + sum)});
      return Status::OK();
    };
    job.combine = [](const Value& key, const std::vector<Value>& values,
                     std::vector<KeyValue>* out) -> Status {
      double sum = 0;
      for (const Value& v : values) {
        REX_ASSIGN_OR_RETURN(double d, v.ToDouble());
        sum += d;
      }
      out->push_back(KeyValue{key, Value(sum)});
      return Status::OK();
    };
  } else {
    job = MakeHadoopPageRankJob(damping);
  }

  IterationMeter meter(config.metrics);
  for (int it = 0; it < options.iterations; ++it) {
    meter.Begin();
    REX_ASSIGN_OR_RETURN(state, RunMrJob(job, state, config));
    run.iterations.push_back(meter.End(it));
    // Convergence test: executed by the paper's LB emulation in zero time
    // (our harnesses run a fixed iteration count instead).
  }

  run.ranks.assign(static_cast<size_t>(graph.num_vertices), 0.0);
  for (const KeyValue& rec : state) {
    REX_ASSIGN_OR_RETURN(int64_t v, rec.key.ToInt());
    double rank = 0;
    if (options.haloop) {
      REX_ASSIGN_OR_RETURN(rank, rec.value.ToDouble());
    } else {
      REX_ASSIGN_OR_RETURN(rank, rec.value.AsList()[0].ToDouble());
    }
    run.ranks[static_cast<size_t>(v)] = rank;
  }
  run.total_seconds = SecondsSince(t_total);
  return run;
}

// ----------------------------------------------------------------- SSSP --

Result<MrSsspRun> RunMrSssp(const GraphData& graph,
                            const MrSsspOptions& options) {
  MrConfig config = options.config;
  MetricsRegistry local_metrics;
  if (config.metrics == nullptr) config.metrics = &local_metrics;
  MrSsspRun run;
  const auto t_total = std::chrono::steady_clock::now();
  auto adj = BuildAdjacency(graph);

  // Records: Hadoop (v, [dist, adjList]); HaLoop (v, dist). dist -1 =
  // unreached. Frontier expansion keys off dist == iteration - 1
  // (relation-level Δᵢ).
  std::vector<KeyValue> state;
  state.reserve(static_cast<size_t>(graph.num_vertices));
  for (int64_t v = 0; v < graph.num_vertices; ++v) {
    const int64_t d = v == options.source ? 0 : -1;
    if (options.haloop) {
      state.push_back(KeyValue{Value(v), Value(d)});
    } else {
      std::vector<Value> nbrs;
      auto it = adj->find(v);
      if (it != adj->end()) {
        for (int64_t n : it->second) nbrs.push_back(Value(n));
      }
      state.push_back(
          KeyValue{Value(v), Value::List({Value(d), Value::List(nbrs)})});
    }
  }

  // Combiner: min over the candidate distances, adjacency lists pass
  // through untouched (they must reach the reducer in map-output form).
  auto min_combine = [](const Value& key, const std::vector<Value>& values,
                        std::vector<KeyValue>* out) -> Status {
    int64_t best = -1;
    for (const Value& v : values) {
      if (v.type() == ValueType::kList) {
        out->push_back(KeyValue{key, v});
        continue;
      }
      REX_ASSIGN_OR_RETURN(int64_t d, v.ToInt());
      if (d >= 0 && (best < 0 || d < best)) best = d;
    }
    out->push_back(KeyValue{key, Value(best)});
    return Status::OK();
  };
  // Reducer: min-merge; the Hadoop variant reassembles (dist, adjacency)
  // records, the HaLoop variant keeps bare distances.
  const bool haloop = options.haloop;
  auto min_reduce = [haloop](const Value& key,
                             const std::vector<Value>& values,
                             std::vector<KeyValue>* out) -> Status {
    int64_t best = -1;
    Value structure = Value::List({});
    for (const Value& v : values) {
      if (v.type() == ValueType::kList) {
        structure = v;
        continue;
      }
      REX_ASSIGN_OR_RETURN(int64_t d, v.ToInt());
      if (d >= 0 && (best < 0 || d < best)) best = d;
    }
    if (haloop) {
      out->push_back(KeyValue{key, Value(best)});
    } else {
      out->push_back(KeyValue{key, Value::List({Value(best), structure})});
    }
    return Status::OK();
  };

  IterationMeter meter(config.metrics);
  for (int it = 1; it <= options.iterations; ++it) {
    MrJob job;
    job.name = options.haloop ? "sssp-haloop" : "sssp-hadoop";
    const int64_t frontier_dist = it - 1;
    if (options.haloop) {
      job.map = [adj, frontier_dist](const KeyValue& rec,
                                     std::vector<KeyValue>* out) -> Status {
        REX_ASSIGN_OR_RETURN(int64_t d, rec.value.ToInt());
        out->push_back(rec);  // carry state
        if (d == frontier_dist) {
          REX_ASSIGN_OR_RETURN(int64_t v, rec.key.ToInt());
          auto a = adj->find(v);
          if (a != adj->end()) {
            for (int64_t n : a->second) {
              out->push_back(KeyValue{Value(n), Value(d + 1)});
            }
          }
        }
        return Status::OK();
      };
    } else {
      job.map = [frontier_dist](const KeyValue& rec,
                                std::vector<KeyValue>* out) -> Status {
        const auto& payload = rec.value.AsList();
        REX_ASSIGN_OR_RETURN(int64_t d, payload[0].ToInt());
        // The full record — distance and adjacency — re-shuffles every
        // iteration (the stateless-task cost REX avoids).
        out->push_back(KeyValue{rec.key, Value(d)});
        out->push_back(KeyValue{rec.key, payload[1]});
        if (d == frontier_dist) {
          for (const Value& n : payload[1].AsList()) {
            out->push_back(KeyValue{n, Value(d + 1)});
          }
        }
        return Status::OK();
      };
    }
    job.reduce = min_reduce;
    job.combine = min_combine;

    meter.Begin();
    REX_ASSIGN_OR_RETURN(state, RunMrJob(job, state, config));
    run.iterations.push_back(meter.End(it));
  }

  run.distances.assign(static_cast<size_t>(graph.num_vertices), -1);
  for (const KeyValue& rec : state) {
    REX_ASSIGN_OR_RETURN(int64_t v, rec.key.ToInt());
    int64_t d = -1;
    if (options.haloop) {
      REX_ASSIGN_OR_RETURN(d, rec.value.ToInt());
    } else {
      REX_ASSIGN_OR_RETURN(d, rec.value.AsList()[0].ToInt());
    }
    run.distances[static_cast<size_t>(v)] = d;
  }
  run.total_seconds = SecondsSince(t_total);
  return run;
}

// --------------------------------------------------------------- K-means --

Result<MrKMeansRun> RunMrKMeans(const std::vector<Tuple>& points,
                                const MrKMeansOptions& options) {
  MrConfig config = options.config;
  MetricsRegistry local_metrics;
  if (config.metrics == nullptr) config.metrics = &local_metrics;
  MrKMeansRun run;
  const auto t_total = std::chrono::steady_clock::now();

  // Points as records once; centroids travel via the "distributed cache".
  std::vector<KeyValue> input;
  input.reserve(points.size());
  for (const Tuple& p : points) {
    input.push_back(KeyValue{
        p.field(0), Value::List({p.field(1), p.field(2)})});
  }

  // Seed centroids: points with pid < k (same sample as the REX plan).
  auto centroids = std::make_shared<std::vector<std::pair<double, double>>>();
  centroids->resize(static_cast<size_t>(options.k), {0, 0});
  for (const Tuple& p : points) {
    int64_t pid = p.field(0).AsInt();
    if (pid < options.k) {
      (*centroids)[static_cast<size_t>(pid)] = {p.field(1).AsDouble(),
                                                p.field(2).AsDouble()};
    }
  }

  auto partial_sum = [](const Value& key, const std::vector<Value>& values,
                        std::vector<KeyValue>* out) -> Status {
    double sx = 0, sy = 0, n = 0;
    for (const Value& v : values) {
      const auto& list = v.AsList();
      REX_ASSIGN_OR_RETURN(double x, list[0].ToDouble());
      REX_ASSIGN_OR_RETURN(double y, list[1].ToDouble());
      REX_ASSIGN_OR_RETURN(double w, list[2].ToDouble());
      sx += x;
      sy += y;
      n += w;
    }
    out->push_back(
        KeyValue{key, Value::List({Value(sx), Value(sy), Value(n)})});
    return Status::OK();
  };

  IterationMeter meter(config.metrics);
  for (int it = 0; it < options.max_iterations; ++it) {
    MrJob job;
    job.name = "kmeans";
    auto current = std::make_shared<std::vector<std::pair<double, double>>>(
        *centroids);
    job.map = [current](const KeyValue& rec,
                        std::vector<KeyValue>* out) -> Status {
      const auto& xy = rec.value.AsList();
      REX_ASSIGN_OR_RETURN(double x, xy[0].ToDouble());
      REX_ASSIGN_OR_RETURN(double y, xy[1].ToDouble());
      int best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < current->size(); ++c) {
        const double dx = x - (*current)[c].first;
        const double dy = y - (*current)[c].second;
        const double d = dx * dx + dy * dy;
        if (d < best_d) {
          best_d = d;
          best = static_cast<int>(c);
        }
      }
      out->push_back(KeyValue{
          Value(int64_t{best}),
          Value::List({Value(x), Value(y), Value(1.0)})});
      return Status::OK();
    };
    job.combine = partial_sum;
    job.reduce = [](const Value& key, const std::vector<Value>& values,
                    std::vector<KeyValue>* out) -> Status {
      double sx = 0, sy = 0, n = 0;
      for (const Value& v : values) {
        const auto& list = v.AsList();
        REX_ASSIGN_OR_RETURN(double x, list[0].ToDouble());
        REX_ASSIGN_OR_RETURN(double y, list[1].ToDouble());
        REX_ASSIGN_OR_RETURN(double w, list[2].ToDouble());
        sx += x;
        sy += y;
        n += w;
      }
      if (n > 0) {
        out->push_back(KeyValue{
            key, Value::List({Value(sx / n), Value(sy / n)})});
      }
      return Status::OK();
    };

    meter.Begin();
    REX_ASSIGN_OR_RETURN(std::vector<KeyValue> result,
                         RunMrJob(job, input, config));
    run.iterations.push_back(meter.End(it));

    bool moved = false;
    for (const KeyValue& rec : result) {
      REX_ASSIGN_OR_RETURN(int64_t c, rec.key.ToInt());
      const auto& xy = rec.value.AsList();
      REX_ASSIGN_OR_RETURN(double x, xy[0].ToDouble());
      REX_ASSIGN_OR_RETURN(double y, xy[1].ToDouble());
      auto& slot = (*centroids)[static_cast<size_t>(c)];
      if (slot.first != x || slot.second != y) moved = true;
      slot = {x, y};
    }
    // Convergence test: zero-time under the LB emulation.
    if (!moved) break;
  }

  run.centroids = *centroids;
  run.total_seconds = SecondsSince(t_total);
  return run;
}

// ------------------------------------------------------- Fig 4 aggregate --

Result<MrAggregationRun> RunMrAggregation(const std::vector<Tuple>& lineitem,
                                          const MrConfig& config_in) {
  MrConfig config = config_in;
  MetricsRegistry local_metrics;
  if (config.metrics == nullptr) config.metrics = &local_metrics;
  const auto t_total = std::chrono::steady_clock::now();

  // Records: key = orderkey, value = [linenumber, tax].
  std::vector<KeyValue> input;
  input.reserve(lineitem.size());
  for (const Tuple& row : lineitem) {
    input.push_back(KeyValue{
        row.field(0), Value::List({row.field(1), row.field(4)})});
  }

  MrJob job;
  job.name = "tpch-agg";
  job.map = [](const KeyValue& rec, std::vector<KeyValue>* out) -> Status {
    const auto& cols = rec.value.AsList();
    REX_ASSIGN_OR_RETURN(int64_t linenumber, cols[0].ToInt());
    if (linenumber > 1) {
      out->push_back(KeyValue{
          Value(int64_t{0}),
          Value::List({cols[1], Value(int64_t{1})})});
    }
    return Status::OK();
  };
  auto sum_pair = [](const Value& key, const std::vector<Value>& values,
                     std::vector<KeyValue>* out) -> Status {
    double tax = 0;
    int64_t count = 0;
    for (const Value& v : values) {
      const auto& pair = v.AsList();
      REX_ASSIGN_OR_RETURN(double t, pair[0].ToDouble());
      REX_ASSIGN_OR_RETURN(int64_t c, pair[1].ToInt());
      tax += t;
      count += c;
    }
    out->push_back(KeyValue{key, Value::List({Value(tax), Value(count)})});
    return Status::OK();
  };
  job.combine = sum_pair;
  job.reduce = sum_pair;

  REX_ASSIGN_OR_RETURN(std::vector<KeyValue> result,
                       RunMrJob(job, input, config));
  MrAggregationRun run;
  if (result.size() == 1) {
    const auto& pair = result[0].value.AsList();
    REX_ASSIGN_OR_RETURN(run.sum_tax, pair[0].ToDouble());
    REX_ASSIGN_OR_RETURN(run.count, pair[1].ToInt());
  }
  run.total_seconds = SecondsSince(t_total);
  return run;
}

}  // namespace rex
