// Iterative MapReduce implementations of the paper's workloads — the
// Hadoop and HaLoop baselines of §6.
//
// Hadoop variants are the classic stateless formulations: every iteration
// re-maps and re-shuffles the complete record set (state rides along as
// record payload). HaLoop variants emulate [4] exactly as the paper does —
// as a LOWER BOUND: reducer-input-cache construction and the recursive
// stages over immutable data execute in zero time, which here means the
// adjacency cache is built outside the timed jobs and immutable data never
// enters an iteration's map input or shuffle. Convergence tests and final
// result formatting are likewise excluded (zero time) for both.
#ifndef REX_MAPREDUCE_MR_JOBS_H_
#define REX_MAPREDUCE_MR_JOBS_H_

#include <vector>

#include "data/generators.h"
#include "mapreduce/mr_engine.h"

namespace rex {

struct MrIterationReport {
  int iteration = 0;
  double seconds = 0;
  int64_t shuffle_bytes = 0;
  int64_t map_input_records = 0;
};

struct MrPageRankOptions {
  int iterations = 20;
  bool haloop = false;
  double damping = 0.85;
  MrConfig config;
};

struct MrPageRankRun {
  std::vector<double> ranks;
  std::vector<MrIterationReport> iterations;
  double total_seconds = 0;
};

Result<MrPageRankRun> RunMrPageRank(const GraphData& graph,
                                    const MrPageRankOptions& options);

/// The classic stateless Hadoop PageRank job over (v, [rank, adjacency])
/// records. Exposed so the wrap configuration (§4.4) can run the exact
/// same "compiled Hadoop classes" inside REX.
MrJob MakeHadoopPageRankJob(double damping);

struct MrSsspOptions {
  int64_t source = 0;
  int iterations = 6;  // the paper runs Hadoop/HaLoop to 99% reachability
  bool haloop = false;
  MrConfig config;
};

struct MrSsspRun {
  std::vector<int64_t> distances;  // -1 = not reached within `iterations`
  std::vector<MrIterationReport> iterations;
  double total_seconds = 0;
};

/// Frontier-based ("relation-level Δᵢ", §6.3) shortest path.
Result<MrSsspRun> RunMrSssp(const GraphData& graph,
                            const MrSsspOptions& options);

struct MrKMeansOptions {
  int k = 8;
  int max_iterations = 100;
  MrConfig config;
};

struct MrKMeansRun {
  std::vector<std::pair<double, double>> centroids;
  std::vector<MrIterationReport> iterations;
  double total_seconds = 0;
};

/// Classic Hadoop k-means: centroids in the distributed cache, every
/// iteration re-maps every point. (The paper omits HaLoop here: with no
/// immutable relation in the shuffle, HaLoop ≡ Hadoop, §6.2.)
Result<MrKMeansRun> RunMrKMeans(const std::vector<Tuple>& points,
                                const MrKMeansOptions& options);

struct MrAggregationRun {
  double sum_tax = 0;
  int64_t count = 0;
  double total_seconds = 0;
};

/// Fig 4's query as one MapReduce job:
/// SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1.
Result<MrAggregationRun> RunMrAggregation(const std::vector<Tuple>& lineitem,
                                          const MrConfig& config);

}  // namespace rex

#endif  // REX_MAPREDUCE_MR_JOBS_H_
