#include "mapreduce/mr_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "common/serde.h"
#include "common/tuple.h"

namespace rex {

namespace {

void BurnStartupCost(double ms) {
  if (ms <= 0) return;
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration<double, std::milli>(ms);
  volatile uint64_t sink = 0;
  while (std::chrono::steady_clock::now() < until) {
    sink = sink + 1;
  }
}

bool KeyLess(const KeyValue& a, const KeyValue& b) {
  return a.key < b.key;
}

/// Groups a key-sorted run and applies `fn` per group.
Status ForEachGroup(const std::vector<KeyValue>& sorted,
                    const std::function<Status(const Value&,
                                               const std::vector<Value>&)>&
                        fn) {
  size_t i = 0;
  std::vector<Value> values;
  while (i < sorted.size()) {
    size_t j = i;
    values.clear();
    while (j < sorted.size() && sorted[j].key == sorted[i].key) {
      values.push_back(sorted[j].value);
      ++j;
    }
    REX_RETURN_NOT_OK(fn(sorted[i].key, values));
    i = j;
  }
  return Status::OK();
}

/// Text-form encoding for job-boundary materialization: a printable
/// hex-line per record (stands in for TextOutputFormat/TextInputFormat;
/// costs the same linear character encode/decode work, losslessly).
std::string ToTextForm(const std::vector<KeyValue>& records) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  BufferWriter w;
  for (const KeyValue& kv : records) {
    w.PutValue(kv.key);
    w.PutValue(kv.value);
    const std::string& bytes = w.bytes();
    out.reserve(out.size() + bytes.size() * 2 + 1);
    for (unsigned char c : bytes) {
      out += kHex[c >> 4];
      out += kHex[c & 0xF];
    }
    out += '\n';
    w = BufferWriter();
  }
  return out;
}

Result<std::vector<KeyValue>> FromTextForm(const std::string& text) {
  std::vector<KeyValue> out;
  size_t i = 0;
  std::string bytes;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  while (i < text.size()) {
    size_t j = text.find('\n', i);
    if (j == std::string::npos) j = text.size();
    bytes.clear();
    bytes.reserve((j - i) / 2);
    for (size_t k = i; k + 1 < j + 1 && k + 1 < text.size() && k < j;
         k += 2) {
      int hi = nibble(text[k]);
      int lo = nibble(text[k + 1]);
      if (hi < 0 || lo < 0) {
        return Status::ParseError("bad text-form record");
      }
      bytes += static_cast<char>((hi << 4) | lo);
    }
    if (!bytes.empty()) {
      BufferReader r(bytes);
      KeyValue kv;
      REX_ASSIGN_OR_RETURN(kv.key, r.GetValue());
      REX_ASSIGN_OR_RETURN(kv.value, r.GetValue());
      out.push_back(std::move(kv));
    }
    i = j + 1;
  }
  return out;
}

std::string SerializeRun(const std::vector<KeyValue>& run) {
  BufferWriter w;
  w.PutU32(static_cast<uint32_t>(run.size()));
  for (const KeyValue& kv : run) {
    w.PutValue(kv.key);
    w.PutValue(kv.value);
  }
  return w.TakeBytes();
}

Result<std::vector<KeyValue>> DeserializeRun(const std::string& bytes) {
  BufferReader r(bytes);
  REX_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  std::vector<KeyValue> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    KeyValue kv;
    REX_ASSIGN_OR_RETURN(kv.key, r.GetValue());
    REX_ASSIGN_OR_RETURN(kv.value, r.GetValue());
    out.push_back(std::move(kv));
  }
  return out;
}

/// A temp-file store for shuffle segments and job outputs.
class SegmentStore {
 public:
  explicit SegmentStore(bool use_disk) : use_disk_(use_disk) {
    if (use_disk_) file_ = std::tmpfile();
  }
  ~SegmentStore() {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Write(const std::vector<KeyValue>& run, int* handle,
               int64_t* bytes) {
    std::string data = SerializeRun(run);
    *bytes = static_cast<int64_t>(data.size());
    std::lock_guard<std::mutex> lock(mutex_);
    if (!use_disk_ || file_ == nullptr) {
      segments_.push_back(std::move(data));
      *handle = static_cast<int>(segments_.size()) - 1;
      return Status::OK();
    }
    if (std::fseek(file_, 0, SEEK_END) != 0) {
      return Status::IoError("fseek in shuffle store");
    }
    long offset = std::ftell(file_);
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return Status::IoError("short shuffle write");
    }
    offsets_.emplace_back(offset, data.size());
    *handle = static_cast<int>(offsets_.size()) - 1;
    return Status::OK();
  }

  Result<std::vector<KeyValue>> Read(int handle) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!use_disk_ || file_ == nullptr) {
      return DeserializeRun(segments_[static_cast<size_t>(handle)]);
    }
    auto [offset, length] = offsets_[static_cast<size_t>(handle)];
    if (std::fseek(file_, offset, SEEK_SET) != 0) {
      return Status::IoError("fseek reading shuffle segment");
    }
    std::string data(length, '\0');
    if (std::fread(data.data(), 1, length, file_) != length) {
      return Status::IoError("short shuffle read");
    }
    return DeserializeRun(data);
  }

 private:
  bool use_disk_;
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
  std::vector<std::string> segments_;           // in-memory fallback
  std::vector<std::pair<long, size_t>> offsets_;
};

/// Runs `tasks` callables with at most `parallelism` threads; returns the
/// first error.
Status RunParallel(std::vector<std::function<Status()>> tasks,
                   int parallelism) {
  std::mutex mutex;
  Status first_error;
  size_t next = 0;
  auto worker = [&] {
    while (true) {
      size_t mine;
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (next >= tasks.size() || !first_error.ok()) return;
        mine = next++;
      }
      Status st = tasks[mine]();
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(mutex);
        if (first_error.ok()) first_error = st;
        return;
      }
    }
  };
  std::vector<std::thread> threads;
  const int n = std::max(1, std::min<int>(parallelism,
                                          static_cast<int>(tasks.size())));
  threads.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  return first_error;
}

Status ApplyCombiner(const ReduceFn& combine, std::vector<KeyValue>* run) {
  std::vector<KeyValue> combined;
  REX_RETURN_NOT_OK(ForEachGroup(
      *run, [&combine, &combined](const Value& key,
                                  const std::vector<Value>& values) {
        return combine(key, values, &combined);
      }));
  std::sort(combined.begin(), combined.end(), KeyLess);
  run->swap(combined);
  return Status::OK();
}

}  // namespace

std::vector<KeyValue> MakeRecords(
    std::vector<std::pair<Value, Value>> kvs) {
  std::vector<KeyValue> out;
  out.reserve(kvs.size());
  for (auto& [k, v] : kvs) out.push_back(KeyValue{std::move(k), std::move(v)});
  return out;
}

Result<std::vector<KeyValue>> RunMrJob(const MrJob& job,
                                       const std::vector<KeyValue>& input,
                                       const MrConfig& config) {
  BurnStartupCost(config.startup_cost_ms);
  if (config.metrics != nullptr) {
    config.metrics->GetCounter(mr_metrics::kJobs)->Increment();
    config.metrics->GetCounter(metrics::kMapInputRecords)
        ->Add(static_cast<int64_t>(input.size()));
  }

  const int m = std::max(1, config.num_map_tasks);
  const int r = std::max(1, config.num_reduce_tasks);
  SegmentStore shuffle(config.materialize_to_disk);

  // segment_handles[map][reduce] -> shuffle segment.
  std::vector<std::vector<int>> segment_handles(
      static_cast<size_t>(m), std::vector<int>(static_cast<size_t>(r), -1));
  std::mutex metrics_mutex;
  int64_t shuffle_bytes = 0;

  // ---- map phase: map, partition, sort, combine, spill ------------------
  std::vector<std::function<Status()>> map_tasks;
  for (int t = 0; t < m; ++t) {
    map_tasks.push_back([&, t]() -> Status {
      const size_t begin = input.size() * static_cast<size_t>(t) /
                           static_cast<size_t>(m);
      const size_t end = input.size() * static_cast<size_t>(t + 1) /
                         static_cast<size_t>(m);
      std::vector<std::vector<KeyValue>> partitions(static_cast<size_t>(r));
      std::vector<KeyValue> mapped;
      for (size_t i = begin; i < end; ++i) {
        mapped.clear();
        REX_RETURN_NOT_OK(job.map(input[i], &mapped));
        for (KeyValue& kv : mapped) {
          const auto p =
              static_cast<size_t>(kv.key.Hash() % static_cast<uint64_t>(r));
          partitions[p].push_back(std::move(kv));
        }
      }
      for (int p = 0; p < r; ++p) {
        auto& part = partitions[static_cast<size_t>(p)];
        if (part.empty()) continue;
        std::sort(part.begin(), part.end(), KeyLess);
        if (job.combine) REX_RETURN_NOT_OK(ApplyCombiner(job.combine, &part));
        int handle = -1;
        int64_t bytes = 0;
        REX_RETURN_NOT_OK(shuffle.Write(part, &handle, &bytes));
        segment_handles[static_cast<size_t>(t)][static_cast<size_t>(p)] =
            handle;
        std::lock_guard<std::mutex> lock(metrics_mutex);
        shuffle_bytes += bytes;
      }
      return Status::OK();
    });
  }
  REX_RETURN_NOT_OK(RunParallel(std::move(map_tasks), config.parallelism));
  if (config.metrics != nullptr) {
    config.metrics->GetCounter(metrics::kShuffleBytes)->Add(shuffle_bytes);
  }

  // ---- reduce phase: fetch, merge, group, reduce -------------------------
  std::vector<std::vector<KeyValue>> reduce_outputs(static_cast<size_t>(r));
  int64_t reduce_input_records = 0;
  std::vector<std::function<Status()>> reduce_tasks;
  for (int p = 0; p < r; ++p) {
    reduce_tasks.push_back([&, p]() -> Status {
      // K-way merge of the sorted segments.
      std::vector<std::vector<KeyValue>> runs;
      for (int t = 0; t < m; ++t) {
        int handle =
            segment_handles[static_cast<size_t>(t)][static_cast<size_t>(p)];
        if (handle < 0) continue;
        REX_ASSIGN_OR_RETURN(std::vector<KeyValue> run,
                             shuffle.Read(handle));
        runs.push_back(std::move(run));
      }
      std::vector<KeyValue> merged;
      {
        std::vector<size_t> pos(runs.size(), 0);
        while (true) {
          int best = -1;
          for (size_t i = 0; i < runs.size(); ++i) {
            if (pos[i] >= runs[i].size()) continue;
            if (best < 0 ||
                KeyLess(runs[i][pos[i]],
                        runs[static_cast<size_t>(best)]
                            [pos[static_cast<size_t>(best)]])) {
              best = static_cast<int>(i);
            }
          }
          if (best < 0) break;
          merged.push_back(
              std::move(runs[static_cast<size_t>(best)]
                            [pos[static_cast<size_t>(best)]]));
          ++pos[static_cast<size_t>(best)];
        }
      }
      {
        std::lock_guard<std::mutex> lock(metrics_mutex);
        reduce_input_records += static_cast<int64_t>(merged.size());
      }
      auto& out = reduce_outputs[static_cast<size_t>(p)];
      return ForEachGroup(merged,
                          [&job, &out](const Value& key,
                                       const std::vector<Value>& values) {
                            return job.reduce(key, values, &out);
                          });
    });
  }
  REX_RETURN_NOT_OK(RunParallel(std::move(reduce_tasks),
                                config.parallelism));
  if (config.metrics != nullptr) {
    config.metrics->GetCounter(metrics::kReduceInputRecords)
        ->Add(reduce_input_records);
  }

  // ---- output materialization (the per-job HDFS checkpoint) -------------
  std::vector<KeyValue> output;
  for (auto& part : reduce_outputs) {
    for (KeyValue& kv : part) output.push_back(std::move(kv));
  }
  if (config.materialize_to_disk) {
    if (config.text_io) {
      // Text-form the records before the HDFS write and parse them back
      // after the read (default TextOutputFormat/TextInputFormat costs).
      std::string text = ToTextForm(output);
      SegmentStore hdfs(true);
      std::vector<KeyValue> one{
          KeyValue{Value(int64_t{0}), Value(std::move(text))}};
      int handle = -1;
      int64_t bytes = 0;
      REX_RETURN_NOT_OK(hdfs.Write(one, &handle, &bytes));
      REX_ASSIGN_OR_RETURN(std::vector<KeyValue> back, hdfs.Read(handle));
      if (back.size() != 1) return Status::Internal("hdfs readback");
      REX_ASSIGN_OR_RETURN(output, FromTextForm(back[0].value.AsString()));
      if (config.metrics != nullptr) {
        config.metrics->GetCounter(mr_metrics::kHdfsBytes)->Add(bytes);
      }
    } else {
      SegmentStore hdfs(true);
      int handle = -1;
      int64_t bytes = 0;
      REX_RETURN_NOT_OK(hdfs.Write(output, &handle, &bytes));
      REX_ASSIGN_OR_RETURN(output, hdfs.Read(handle));
      if (config.metrics != nullptr) {
        config.metrics->GetCounter(mr_metrics::kHdfsBytes)->Add(bytes);
      }
    }
  }
  return output;
}

}  // namespace rex
