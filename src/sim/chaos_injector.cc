#include "sim/chaos_injector.h"

#include <sstream>
#include <utility>

#include "common/delta_codec.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/serde.h"

namespace rex {

ChaosInjector::ChaosInjector(FaultSchedule schedule, Network* network)
    : schedule_(std::move(schedule)),
      network_(network),
      rng_(schedule_.seed ^ 0x1a3ec70fULL) {
  fired_.assign(schedule_.events.size(), false);
}

void ChaosInjector::DisarmDropsForLocked(int worker) {
  for (FaultEvent& e : schedule_.events) {
    if (e.kind == FaultEvent::Kind::kDrop && e.worker == worker) {
      e.count = 0;
    }
  }
}

std::vector<int> ChaosInjector::TakeDueCrashes(int stratum) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> victims;
  for (size_t i = 0; i < schedule_.events.size(); ++i) {
    const FaultEvent& e = schedule_.events[i];
    if (fired_[i] || e.kind != FaultEvent::Kind::kCrash || e.during_recovery) {
      continue;
    }
    if (e.after_messages >= 1 || e.at_stratum != stratum) continue;
    fired_[i] = true;
    stats_.crashes += 1;
    DisarmDropsForLocked(e.worker);
    victims.push_back(e.worker);
  }
  return victims;
}

std::vector<int> ChaosInjector::TakeOverdueMidStratumCrashes(int stratum) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> victims;
  for (size_t i = 0; i < schedule_.events.size(); ++i) {
    const FaultEvent& e = schedule_.events[i];
    if (fired_[i] || e.kind != FaultEvent::Kind::kCrash ||
        e.during_recovery) {
      continue;
    }
    if (e.after_messages < 1 || e.at_stratum > stratum) continue;
    // The stratum produced fewer sends than the trigger count: the node
    // dies at the stratum's end instead. This must count as a mid-stratum
    // abort — a drop window may have been tied to this crash, so the
    // stratum's results cannot be trusted.
    fired_[i] = true;
    stats_.crashes += 1;
    stats_.mid_stratum_crashes += 1;
    DisarmDropsForLocked(e.worker);
    victims.push_back(e.worker);
  }
  return victims;
}

std::vector<int> ChaosInjector::TakeRestores(int stratum) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> out;
  for (size_t i = 0; i < schedule_.events.size(); ++i) {
    const FaultEvent& e = schedule_.events[i];
    if (fired_[i] || e.kind != FaultEvent::Kind::kRestore) continue;
    if (e.at_stratum != stratum) continue;
    fired_[i] = true;
    stats_.restores += 1;
    out.push_back(e.worker);
  }
  return out;
}

std::vector<std::pair<int, int>> ChaosInjector::TakeDueCorruptions(
    int stratum) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<int, int>> out;
  for (size_t i = 0; i < schedule_.events.size(); ++i) {
    const FaultEvent& e = schedule_.events[i];
    if (fired_[i] || e.kind != FaultEvent::Kind::kCorruptCheckpoint) continue;
    if (e.at_stratum != stratum) continue;
    fired_[i] = true;
    stats_.corruptions += 1;
    out.emplace_back(e.worker, e.count);
  }
  return out;
}

void ChaosInjector::BeginStratum(int stratum) {
  std::lock_guard<std::mutex> lock(mutex_);
  current_stratum_ = stratum;
  stratum_sends_ = 0;
}

void ChaosInjector::BeginRecovery() {
  std::lock_guard<std::mutex> lock(mutex_);
  in_recovery_ = true;
  recovery_sends_ = 0;
}

void ChaosInjector::EndRecovery() {
  std::lock_guard<std::mutex> lock(mutex_);
  in_recovery_ = false;
}

std::vector<int> ChaosInjector::TakeUnfiredRecoveryCrashes() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> victims;
  for (size_t i = 0; i < schedule_.events.size(); ++i) {
    const FaultEvent& e = schedule_.events[i];
    if (fired_[i] || e.kind != FaultEvent::Kind::kCrash ||
        !e.during_recovery) {
      continue;
    }
    fired_[i] = true;
    stats_.crashes += 1;
    stats_.recovery_crashes += 1;
    DisarmDropsForLocked(e.worker);
    victims.push_back(e.worker);
  }
  return victims;
}

bool ChaosInjector::AllMandatoryEventsFired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < schedule_.events.size(); ++i) {
    const FaultEvent::Kind k = schedule_.events[i].kind;
    if ((k == FaultEvent::Kind::kCrash || k == FaultEvent::Kind::kRestore) &&
        !fired_[i]) {
      return false;
    }
  }
  return true;
}

std::string ChaosInjector::UnfiredEventsToString() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (size_t i = 0; i < schedule_.events.size(); ++i) {
    const FaultEvent::Kind k = schedule_.events[i].kind;
    if ((k == FaultEvent::Kind::kCrash || k == FaultEvent::Kind::kRestore) &&
        !fired_[i]) {
      if (os.tellp() > 0) os << ", ";
      os << schedule_.events[i].ToString();
    }
  }
  return os.str();
}

void ChaosInjector::NoteRecoveryRound() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.recovery_rounds += 1;
}

ChaosStats ChaosInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

FaultInjector::Action ChaosInjector::OnSend(Message* msg) {
  std::lock_guard<std::mutex> lock(mutex_);

  // 1) Crash triggers: count this send against armed mid-stratum /
  //    during-recovery events and crash victims whose count is reached.
  //    Crash is safe here: the sending worker's own message is still in
  //    flight, so the quiescence count cannot prematurely hit zero. Only
  //    the victim is touched — the driver's failure detector discovers
  //    the death through missed heartbeats.
  if (in_recovery_) {
    recovery_sends_ += 1;
  } else {
    stratum_sends_ += 1;
  }
  for (size_t i = 0; i < schedule_.events.size(); ++i) {
    const FaultEvent& e = schedule_.events[i];
    if (fired_[i] || e.kind != FaultEvent::Kind::kCrash) continue;
    if (e.after_messages < 1) continue;  // boundary crash: driver's job
    bool due = false;
    if (e.during_recovery) {
      due = in_recovery_ && recovery_sends_ >= e.after_messages;
    } else {
      due = !in_recovery_ && e.at_stratum == current_stratum_ &&
            stratum_sends_ >= e.after_messages;
    }
    if (!due || network_->IsFailed(e.worker) ||
        network_->channel(e.worker)->closed()) {
      continue;
    }
    fired_[i] = true;
    stats_.crashes += 1;
    if (e.during_recovery) {
      stats_.recovery_crashes += 1;
    } else {
      stats_.mid_stratum_crashes += 1;
    }
    REX_LOG(Info) << "chaos: failing worker " << e.worker
                  << (e.during_recovery ? " during recovery"
                                        : " mid-stratum")
                  << " after " << (e.during_recovery ? recovery_sends_
                                                     : stratum_sends_)
                  << " sends";
    network_->Crash(e.worker);
    DisarmDropsForLocked(e.worker);
  }

  // 2) Message-fate windows. At most one action per message; drop wins.
  //    Packed wire runs are decoded through the injector's edge mirror
  //    first so reorder windows can act on their deltas (see the
  //    wire_mirror_ comment in the header).
  const bool packed = msg->kind == Message::Kind::kData &&
                      msg->wire_codec != Message::WireCodec::kNone;
  const WireEdge edge{msg->from_worker, msg->to_worker, msg->target_op};
  std::string packed_raw;
  bool have_packed_raw = false;
  if (packed) {
    if (msg->wire_codec == Message::WireCodec::kRaw) {
      packed_raw = msg->wire_payload;
      have_packed_raw = true;
    } else {
      auto it = wire_mirror_.find(edge);
      if (it != wire_mirror_.end()) {
        Result<std::string> r = DeltaCodecDecode(it->second, msg->wire_payload,
                                                 msg->wire_raw_size);
        if (r.ok()) {
          packed_raw = std::move(*r);
          have_packed_raw = true;
        }
      }
      // Unknown edge (the sender's chain predates this injector) or a
      // decode failure: the run passes through untouched — it cannot be
      // reordered and does not advance the mirror.
    }
  }

  Action action = Action::kDeliver;
  bool shuffled_packed = false;
  bool decided = false;
  for (size_t i = 0; i < schedule_.events.size() && !decided; ++i) {
    FaultEvent& e = schedule_.events[i];
    if (e.count <= 0 || in_recovery_) continue;
    if (current_stratum_ < e.at_stratum) continue;
    switch (e.kind) {
      case FaultEvent::Kind::kDrop:
        // Only to the doomed node, and only while it is still live (once
        // it has crashed the network drops for us). A dropped copy never
        // advances the edge mirror: the sender retransmits this same
        // message until a later OnSend lets it through.
        if (msg->to_worker == e.worker && !network_->IsFailed(e.worker) &&
            e.at_stratum == current_stratum_) {
          e.count -= 1;
          stats_.messages_dropped += 1;
          return Action::kDrop;
        }
        break;
      case FaultEvent::Kind::kDuplicate:
        if (msg->to_worker == e.worker && !network_->IsFailed(e.worker)) {
          e.count -= 1;
          stats_.messages_duplicated += 1;
          action = Action::kDuplicate;
          decided = true;
        }
        break;
      case FaultEvent::Kind::kReorder: {
        if (msg->kind != Message::Kind::kData) break;
        if (e.worker >= 0 && msg->to_worker != e.worker) break;
        if (packed) {
          if (!have_packed_raw || msg->wire_tuples < 2) break;
          if (!ReorderPackedLocked(msg, packed_raw)) break;
          shuffled_packed = true;
        } else {
          if (msg->deltas.size() < 2) break;
          // Fisher-Yates permutation of the batch: simulates packets of
          // one message arriving out of order and being reassembled.
          for (size_t j = msg->deltas.size() - 1; j > 0; --j) {
            const size_t k = static_cast<size_t>(
                rng_.NextBelow(static_cast<uint64_t>(j + 1)));
            std::swap(msg->deltas[j], msg->deltas[k]);
          }
        }
        e.count -= 1;
        stats_.batches_reordered += 1;
        decided = true;
        break;
      }
      default:
        break;
    }
  }

  if (packed && have_packed_raw) {
    if (shuffled_packed) {
      // The receiver decodes the shuffled bytes into its mirror, which now
      // diverges from the sender's dictionary; rewrite every delta-coded
      // run on this edge until a raw run re-syncs the two.
      reordered_edges_.insert(edge);
    } else if (msg->wire_codec == Message::WireCodec::kDelta &&
               reordered_edges_.count(edge) > 0) {
      // Encoded against a dictionary the receiver no longer holds. Ship
      // the decoded bytes whole — checksum and size already describe them
      // — which also re-syncs the receiver's mirror with the sender's.
      msg->wire_codec = Message::WireCodec::kRaw;
      msg->wire_payload = packed_raw;
      msg->wire_ref_seq = 0;
      msg->wire_ref_check = 0;
      reordered_edges_.erase(edge);
    } else if (msg->wire_codec == Message::WireCodec::kRaw) {
      reordered_edges_.erase(edge);  // a raw run re-syncs the edge anyway
    }
    wire_mirror_[edge] = std::move(packed_raw);
  }
  return action;
}

bool ChaosInjector::ReorderPackedLocked(Message* msg, const std::string& raw) {
  Result<DeltaVec> deltas = DeserializeDeltas(raw);
  if (!deltas.ok() || deltas->size() < 2) return false;
  for (size_t j = deltas->size() - 1; j > 0; --j) {
    const size_t k =
        static_cast<size_t>(rng_.NextBelow(static_cast<uint64_t>(j + 1)));
    std::swap((*deltas)[j], (*deltas)[k]);
  }
  std::string shuffled = SerializeDeltas(*deltas);
  msg->wire_codec = Message::WireCodec::kRaw;
  msg->wire_raw_size = static_cast<uint32_t>(shuffled.size());
  msg->wire_raw_check = HashBytes(shuffled.data(), shuffled.size());
  msg->wire_payload = std::move(shuffled);
  msg->wire_ref_seq = 0;
  msg->wire_ref_check = 0;
  return true;
}

}  // namespace rex
