// Seeded multi-fault schedules for the chaos harness.
//
// A FaultSchedule generalizes single-shot failure injection: it describes a
// whole adversarial scenario — multiple sequential or concurrent worker
// crashes (at stratum boundaries, mid-stratum after a number of message
// sends, or while a recovery is itself in progress), worker restores
// (node replacement mid-query), and network fault windows (message drops to
// doomed nodes, duplicate delivery to restored nodes, intra-batch delta
// reordering). Schedules are either hand-built for directed tests or
// generated deterministically from a seed, so any failing scenario is
// reproducible from one integer.
#ifndef REX_SIM_FAULT_SCHEDULE_H_
#define REX_SIM_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace rex {

/// How a query run should react to (injected) node failures.
enum class RecoveryStrategy {
  kRestart,      // discard all work, re-run on the survivors
  kIncremental,  // restore from checkpointed Δ sets and resume (§4.3)
};

struct FaultEvent {
  enum class Kind : uint8_t {
    kCrash,      // fail a worker (boundary, mid-stratum, or mid-recovery)
    kRestore,    // bring a previously crashed worker back (fresh replacement)
    kDrop,       // drop up to `count` messages addressed to `worker`
    kDuplicate,  // deliver up to `count` messages to `worker` twice
    kReorder,    // permute the deltas of up to `count` message batches
    /// Flip a byte in up to `count` checkpoint copies held by `worker`
    /// (-1 = every holder) at the boundary before `at_stratum`. Surviving
    /// replicas repair the damage on read; if every copy of an entry is
    /// hit, recovery degrades to the restart strategy.
    kCorruptCheckpoint,
  };

  Kind kind = Kind::kCrash;
  /// Target worker. kReorder and kCorruptCheckpoint may use -1 (any
  /// destination / every checkpoint holder).
  int worker = -1;
  /// Stratum boundary at which the event fires (kCrash with
  /// after_messages < 0, kRestore) or arms (everything else).
  int at_stratum = 0;
  /// kCrash only: < 0 = fail at the boundary before `at_stratum`; >= 1 =
  /// fail mid-stratum, after that many data/punctuation sends of the
  /// stratum have passed the injector.
  int after_messages = -1;
  /// kCrash only: arm during the recovery triggered by an earlier crash
  /// instead of during normal stratum execution (crash-during-recovery).
  /// Fires after `after_messages` recovery-traffic sends (>= 1 required).
  bool during_recovery = false;
  /// kDrop / kDuplicate / kReorder: size of the fault window in messages.
  int count = 0;

  std::string ToString() const;
};

struct FaultSchedule {
  /// Seed the schedule was generated from (0 for hand-built schedules);
  /// also seeds the injector's own random choices (reorder permutations).
  uint64_t seed = 0;
  RecoveryStrategy strategy = RecoveryStrategy::kIncremental;
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Structural validation against a cluster size: worker ids in range,
  /// fault windows non-empty (drops may target any worker — the sender's
  /// ack/retransmit protocol survives them; duplicates only target nodes
  /// that have been restored), restores only of previously crashed
  /// workers, crash-during-recovery only after a preceding crash, and the
  /// simultaneous-failure count bounded by the replication factor.
  Status Validate(int num_workers, int replication) const;

  std::string ToString() const;
};

/// Counters describing what a chaos run actually did — drivers assert that
/// the scenario really exercised the faults it scheduled.
struct ChaosStats {
  int crashes = 0;           // crash events that fired
  int mid_stratum_crashes = 0;
  int recovery_crashes = 0;  // crashes that fired while recovering
  int restores = 0;          // restore events that fired
  int recovery_rounds = 0;   // recovery passes the driver executed
  int64_t messages_dropped = 0;
  int64_t messages_duplicated = 0;
  int64_t batches_reordered = 0;
  int corruptions = 0;  // checkpoint-corruption events that fired
};

/// Tuning knobs for random schedule generation.
struct ChaosProfile {
  int num_workers = 4;
  int replication = 3;
  /// Crashes are scheduled at strata [0, max_crash_stratum]; keep this
  /// well below the query's convergence stratum — a crash scheduled past
  /// convergence is a validation error at the end of the run.
  int max_crash_stratum = 3;
  double p_mid_stratum = 0.5;
  double p_second_crash = 0.35;
  double p_crash_during_recovery = 0.35;
  double p_restore = 0.5;
  double p_duplicate_after_restore = 0.85;
  double p_drop_to_doomed = 0.6;
  /// Drop window aimed at a live (non-doomed) worker: survived purely by
  /// the sender's retransmission protocol.
  double p_drop_to_live = 0.4;
  double p_reorder = 0.5;
  /// Corrupt checkpoint copies held by a surviving worker (repaired from a
  /// replica when read).
  double p_corrupt_checkpoint = 0.5;
};

/// Deterministically expands a seed into a schedule under `profile`. The
/// same (seed, profile) always yields the same schedule.
FaultSchedule MakeChaosSchedule(uint64_t seed, const ChaosProfile& profile);

}  // namespace rex

#endif  // REX_SIM_FAULT_SCHEDULE_H_
