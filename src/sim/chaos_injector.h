// Seeded network-level fault injector driving a FaultSchedule.
//
// Installed into Network::Send for the duration of one chaos run. The
// driver (Cluster::Run) feeds it stratum/recovery phase transitions; the
// injector fires mid-stratum and during-recovery crashes by calling
// Network::Crash from inside a send — only the victim is touched; the
// driver's failure detector has to notice the silence — and applies
// message-level fault windows (drops against any worker, duplicate to
// restored nodes, intra-batch delta reordering). All decisions derive from
// the schedule plus the
// schedule's seed; the quiescence counter stays exact under every fault
// because drops never enter the in-flight count and duplicates enter (and
// leave) it once per delivered copy.
#ifndef REX_SIM_CHAOS_INJECTOR_H_
#define REX_SIM_CHAOS_INJECTOR_H_

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/fault_injector.h"
#include "net/network.h"
#include "sim/fault_schedule.h"

namespace rex {

class ChaosInjector : public FaultInjector {
 public:
  ChaosInjector(FaultSchedule schedule, Network* network);

  // -- FaultInjector ------------------------------------------------------
  Action OnSend(Message* msg) override;

  // -- driver hooks (driver thread, network quiescent) --------------------

  /// Boundary-scheduled crash events due just before `stratum` begins.
  /// Marks them fired and returns the victims.
  std::vector<int> TakeDueCrashes(int stratum);

  /// Mid-stratum crash events for strata <= `stratum` that never reached
  /// their message count. Called after the stratum's quiescence: the driver
  /// kills the victims and aborts the stratum exactly as if the crash had
  /// fired in flight (a drop window may be tied to the crash, so the
  /// stratum's results cannot be trusted). Marks them fired.
  std::vector<int> TakeOverdueMidStratumCrashes(int stratum);

  /// Restore events due at the boundary before `stratum`. Marks them fired.
  std::vector<int> TakeRestores(int stratum);

  /// Checkpoint-corruption events due at the boundary before `stratum`.
  /// Marks them fired; returns (holder, max_entries) pairs for the driver
  /// to apply via CheckpointStore::CorruptCopies.
  std::vector<std::pair<int, int>> TakeDueCorruptions(int stratum);

  /// Arms mid-stratum events for `stratum` and resets the per-stratum send
  /// counter.
  void BeginStratum(int stratum);

  /// Recovery phase markers: between them, during-recovery crash events are
  /// armed and count recovery traffic.
  void BeginRecovery();
  void EndRecovery();

  /// During-recovery crashes that were armed but never reached their
  /// message count within the recovery traffic; the driver fails them right
  /// after the recovery pass (a crash immediately after recovering). Marks
  /// them fired and returns the victims.
  std::vector<int> TakeUnfiredRecoveryCrashes();

  /// True when every crash and restore event has fired — the run's
  /// validation that no scheduled fault silently missed the query.
  bool AllMandatoryEventsFired() const;
  /// Human-readable list of unfired crash/restore events.
  std::string UnfiredEventsToString() const;

  void NoteRecoveryRound();

  ChaosStats stats() const;

  const FaultSchedule& schedule() const { return schedule_; }

 private:
  /// Deactivates drop windows aimed at `worker` (mutex held). A drop is
  /// only safe while its doomed target is still headed for the paired
  /// mid-stratum crash — the abort discards the lossy stratum. Once the
  /// crash has fired, any send still matching the window belongs to a
  /// post-recovery re-execution of that stratum (restart strategies rewind
  /// the counter), where dropping would silently lose real deltas.
  void DisarmDropsForLocked(int worker);

  /// Shuffles the deltas of a packed wire run (`raw` is its decoded
  /// payload) and rewrites `msg` as a self-contained raw run carrying the
  /// shuffled bytes. Returns false (message untouched) when the payload
  /// does not deserialize to >= 2 deltas.
  bool ReorderPackedLocked(Message* msg, const std::string& raw);

  FaultSchedule schedule_;
  Network* network_;

  mutable std::mutex mutex_;
  Rng rng_;
  std::vector<bool> fired_;  // parallel to schedule_.events
  int current_stratum_ = 0;
  bool in_recovery_ = false;
  int64_t stratum_sends_ = 0;   // non-control sends this stratum
  int64_t recovery_sends_ = 0;  // non-control sends this recovery pass
  ChaosStats stats_;

  /// Packed wire runs (Message::WireCodec) are opaque on the wire, so the
  /// injector rebuilds the sender-side codec dictionary per (sender,
  /// receiver, operator) edge from the very traffic it inspects — Send
  /// keeps per-pair FIFO order, so the mirror always matches what the
  /// sender encoded against. Reordering a run hands the receiver shuffled
  /// bytes its own mirror will absorb, diverging it from the sender's
  /// dictionary; such edges are remembered and every later delta-coded
  /// run on them is rewritten as a raw run (from the mirror) until the
  /// sender's next raw run re-syncs both sides.
  using WireEdge = std::tuple<int, int, int>;  // (from, to, target_op)
  std::map<WireEdge, std::string> wire_mirror_;
  std::set<WireEdge> reordered_edges_;
};

}  // namespace rex

#endif  // REX_SIM_CHAOS_INJECTOR_H_
