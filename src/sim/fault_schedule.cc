#include "sim/fault_schedule.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/rng.h"

namespace rex {

namespace {

const char* KindName(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kCrash:
      return "crash";
    case FaultEvent::Kind::kRestore:
      return "restore";
    case FaultEvent::Kind::kDrop:
      return "drop";
    case FaultEvent::Kind::kDuplicate:
      return "duplicate";
    case FaultEvent::Kind::kReorder:
      return "reorder";
    case FaultEvent::Kind::kCorruptCheckpoint:
      return "corrupt-checkpoint";
  }
  return "?";
}

}  // namespace

std::string FaultEvent::ToString() const {
  std::ostringstream os;
  os << KindName(kind) << "(worker=" << worker << ", stratum=" << at_stratum;
  if (kind == Kind::kCrash) {
    if (during_recovery) os << ", during_recovery";
    if (after_messages >= 1) os << ", after_messages=" << after_messages;
  } else if (kind != Kind::kRestore) {
    os << ", count=" << count;
  }
  os << ")";
  return os.str();
}

std::string FaultSchedule::ToString() const {
  std::ostringstream os;
  os << "FaultSchedule{seed=" << seed << ", strategy="
     << (strategy == RecoveryStrategy::kRestart ? "restart" : "incremental");
  for (const FaultEvent& e : events) os << ", " << e.ToString();
  os << "}";
  return os.str();
}

Status FaultSchedule::Validate(int num_workers, int replication) const {
  const int max_dead = std::min(replication - 1, num_workers - 1);
  // Walk the timeline: crashes grow the dead set, restores shrink it.
  std::set<int> dead;
  std::set<int> ever_crashed;
  bool any_normal_crash = false;
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    const std::string tag = "fault event #" + std::to_string(i) + " " +
                            e.ToString() + ": ";
    // Reorder and checkpoint corruption accept worker == -1 (any
    // destination / every holder).
    const bool needs_worker =
        e.kind != FaultEvent::Kind::kReorder &&
        e.kind != FaultEvent::Kind::kCorruptCheckpoint;
    if (needs_worker && (e.worker < 0 || e.worker >= num_workers)) {
      return Status::InvalidArgument(tag + "worker id out of range [0, " +
                                     std::to_string(num_workers) + ")");
    }
    if (!needs_worker && (e.worker < -1 || e.worker >= num_workers)) {
      return Status::InvalidArgument(tag + "worker id out of range");
    }
    if (e.at_stratum < 0) {
      return Status::InvalidArgument(tag + "negative stratum");
    }
    switch (e.kind) {
      case FaultEvent::Kind::kCrash: {
        if (dead.count(e.worker)) {
          return Status::InvalidArgument(tag + "worker is already failed");
        }
        if (e.during_recovery) {
          if (!any_normal_crash) {
            return Status::InvalidArgument(
                tag + "crash-during-recovery requires a preceding crash");
          }
          if (e.after_messages < 1) {
            return Status::InvalidArgument(
                tag + "crash-during-recovery needs after_messages >= 1");
          }
        }
        dead.insert(e.worker);
        ever_crashed.insert(e.worker);
        if (!e.during_recovery) any_normal_crash = true;
        if (static_cast<int>(dead.size()) > max_dead) {
          return Status::InvalidArgument(
              tag + "more than " + std::to_string(max_dead) +
              " simultaneous failures exceeds what replication=" +
              std::to_string(replication) + " can recover from");
        }
        break;
      }
      case FaultEvent::Kind::kRestore: {
        if (!dead.count(e.worker)) {
          return Status::InvalidArgument(
              tag + "restore of a worker that is not failed");
        }
        dead.erase(e.worker);
        break;
      }
      case FaultEvent::Kind::kDrop: {
        // Drops may target any worker: the sender's ack/retransmit
        // protocol (bounded retry budget with backoff) survives the
        // window, so a lossy link no longer requires a doomed target.
        if (e.count < 1) {
          return Status::InvalidArgument(tag + "window count must be >= 1");
        }
        break;
      }
      case FaultEvent::Kind::kDuplicate: {
        if (e.count < 1) {
          return Status::InvalidArgument(tag + "window count must be >= 1");
        }
        // Duplication targets failed-then-restored nodes (the receiver's
        // sequence-number dedup is what makes it safe).
        if (!ever_crashed.count(e.worker) || dead.count(e.worker)) {
          return Status::InvalidArgument(
              tag + "duplicate window requires a restored worker");
        }
        break;
      }
      case FaultEvent::Kind::kReorder: {
        if (e.count < 1) {
          return Status::InvalidArgument(tag + "window count must be >= 1");
        }
        break;
      }
      case FaultEvent::Kind::kCorruptCheckpoint: {
        if (e.count < 1) {
          return Status::InvalidArgument(
              tag + "corruption count must be >= 1");
        }
        break;
      }
    }
  }
  return Status::OK();
}

FaultSchedule MakeChaosSchedule(uint64_t seed, const ChaosProfile& profile) {
  Rng rng(seed ^ 0xc8a05f17ULL);
  FaultSchedule schedule;
  schedule.seed = seed;

  const int n = profile.num_workers;
  const int max_dead = std::min(profile.replication - 1, n - 1);

  // First crash: the anchor of every scenario.
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  crash.worker = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(n)));
  crash.at_stratum = static_cast<int>(
      rng.NextBelow(static_cast<uint64_t>(profile.max_crash_stratum + 1)));
  const bool mid = rng.NextBool(profile.p_mid_stratum);
  if (mid) crash.after_messages = 1 + static_cast<int>(rng.NextBelow(40));
  schedule.events.push_back(crash);

  // Drops are only legal against a mid-stratum-doomed node.
  if (mid && rng.NextBool(profile.p_drop_to_doomed)) {
    FaultEvent drop;
    drop.kind = FaultEvent::Kind::kDrop;
    drop.worker = crash.worker;
    drop.at_stratum = crash.at_stratum;
    drop.count = 1 + static_cast<int>(rng.NextBelow(5));
    schedule.events.push_back(drop);
  }

  // Optional second crash: concurrent, later, or during the first
  // crash's recovery.
  if (max_dead >= 2 && n >= 2 && rng.NextBool(profile.p_second_crash)) {
    FaultEvent second;
    second.kind = FaultEvent::Kind::kCrash;
    second.worker = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(n)));
    while (second.worker == crash.worker) {
      second.worker = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(n)));
    }
    if (rng.NextBool(profile.p_crash_during_recovery)) {
      second.during_recovery = true;
      second.at_stratum = crash.at_stratum;
      second.after_messages = 1 + static_cast<int>(rng.NextBelow(20));
    } else {
      second.at_stratum =
          crash.at_stratum + static_cast<int>(rng.NextBelow(2));
      if (rng.NextBool(profile.p_mid_stratum)) {
        second.after_messages = 1 + static_cast<int>(rng.NextBelow(40));
      }
    }
    schedule.events.push_back(second);
  }

  // Optional restore of the first victim, optionally followed by a
  // duplicate-delivery window against the restored node.
  if (rng.NextBool(profile.p_restore)) {
    FaultEvent restore;
    restore.kind = FaultEvent::Kind::kRestore;
    restore.worker = crash.worker;
    restore.at_stratum =
        crash.at_stratum + 1 + static_cast<int>(rng.NextBelow(2));
    schedule.events.push_back(restore);
    if (rng.NextBool(profile.p_duplicate_after_restore)) {
      FaultEvent dup;
      dup.kind = FaultEvent::Kind::kDuplicate;
      dup.worker = restore.worker;
      dup.at_stratum = restore.at_stratum;
      dup.count = 1 + static_cast<int>(rng.NextBelow(6));
      schedule.events.push_back(dup);
    }
  }

  // Optional drop window against a live (non-doomed) worker: purely a
  // lossy link, survived by the sender's retransmission protocol.
  if (n >= 2 && rng.NextBool(profile.p_drop_to_live)) {
    FaultEvent drop;
    drop.kind = FaultEvent::Kind::kDrop;
    drop.worker = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(n)));
    while (drop.worker == crash.worker) {
      drop.worker = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(n)));
    }
    drop.at_stratum = static_cast<int>(
        rng.NextBelow(static_cast<uint64_t>(profile.max_crash_stratum + 2)));
    drop.count = 1 + static_cast<int>(rng.NextBelow(5));
    schedule.events.push_back(drop);
  }

  // Optional checkpoint corruption on a surviving holder: detected by the
  // per-copy checksum and repaired from a replica when read. At stratum
  // >= 1 so there are checkpointed Δ sets to corrupt.
  if (n >= 2 && rng.NextBool(profile.p_corrupt_checkpoint)) {
    FaultEvent corrupt;
    corrupt.kind = FaultEvent::Kind::kCorruptCheckpoint;
    corrupt.worker = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(n)));
    while (corrupt.worker == crash.worker) {
      corrupt.worker =
          static_cast<int>(rng.NextBelow(static_cast<uint64_t>(n)));
    }
    corrupt.at_stratum = 1 + static_cast<int>(rng.NextBelow(
                                 static_cast<uint64_t>(
                                     profile.max_crash_stratum + 1)));
    corrupt.count = 1 + static_cast<int>(rng.NextBelow(5));
    schedule.events.push_back(corrupt);
  }

  // Optional intra-batch reorder window, anywhere.
  if (rng.NextBool(profile.p_reorder)) {
    FaultEvent reorder;
    reorder.kind = FaultEvent::Kind::kReorder;
    reorder.worker = -1;
    reorder.at_stratum = static_cast<int>(
        rng.NextBelow(static_cast<uint64_t>(profile.max_crash_stratum + 2)));
    reorder.count = 2 + static_cast<int>(rng.NextBelow(8));
    schedule.events.push_back(reorder);
  }

  return schedule;
}

}  // namespace rex
