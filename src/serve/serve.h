// The serving layer: multiple standing queries resident over shared graph
// state, with incremental result fan-out to subscribers.
//
// A ServingSession is a session/query manager on top of the cluster's
// multi-query residency (Cluster::RunResident / ApplyBaseUpdate). Each
// registered query is run to convergence once and then stays resident; an
// update epoch (a batch of weighted edge mutations) applies the shared
// base-table mutation exactly once, fans per-query perturbation updates out
// through ApplyBaseUpdate, and pushes the net ℤ-set *result* diff of each
// query to its subscribers through a per-subscriber bounded cursor.
//
// Subscription contract (see DESIGN.md "Serving layer"):
//  - Subscribe delivers the converged result snapshot as the first batch
//    (all inserts, `snapshot = true`), then one batch per epoch.
//  - Per-epoch batches are the coalesced ℤ-set diff of the query's keyed
//    result relation: +() for new keys, -() for disappeared keys, ->(old)
//    for keys whose row changed. Keys untouched by the epoch never appear —
//    this is the paper's modified()-style change visibility, exposed
//    directly by ResultBatch::ModifiedKeys().
//  - Cursors are bounded (PR 3's backpressured channels). A subscriber that
//    falls more than `subscriber_queue_capacity` epochs behind has further
//    diffs folded (coalesced) into one pending batch instead of growing the
//    queue; the fold is counted as a shed. Order is preserved: the pending
//    batch is only delivered after the queued batches drain, and once a
//    subscriber has a pending batch every new diff folds into it.
//  - If an epoch's incremental update fails (poisoned / stale resident,
//    mid-update crash schedule), the session fails over to a fresh
//    RunResident against the already-mutated tables and diffs the re-derived
//    result — subscribers never observe a torn epoch, only a complete one.
#ifndef REX_SERVE_SERVE_H_
#define REX_SERVE_SERVE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algos/ivm.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "cluster/cluster.h"
#include "net/channel.h"

namespace rex {

/// Session-level metric names (ServingSession::metrics()).
namespace metrics {
inline constexpr const char kServeSubscribers[] = "serve.subscribers";
inline constexpr const char kServeEpochs[] = "serve.epochs";
inline constexpr const char kServeDiffsPushed[] = "serve.diffs_pushed";
inline constexpr const char kServeSnapshotsPushed[] =
    "serve.snapshots_pushed";
inline constexpr const char kServeQueueBlocks[] = "serve.queue_blocks";
inline constexpr const char kServeSheds[] = "serve.sheds";
inline constexpr const char kServeEpochFailovers[] = "serve.epoch_failovers";
/// Wall time spent diffing + pushing one epoch's batches (Timer).
inline constexpr const char kServePushTimer[] = "serve.push";
}  // namespace metrics

struct ServeOptions {
  /// Admission cap: Register beyond this returns ResourceExhausted.
  int max_queries = 8;
  /// Bound on each subscriber's cursor queue (epoch batches); falling
  /// further behind sheds into one coalesced pending batch.
  size_t subscriber_queue_capacity = 16;
};

/// A standing query: how to (re)derive it from scratch, how to read its
/// keyed result relation, and (optionally) how to turn an epoch's edge
/// mutations into an incremental Cluster::BaseUpdate.
struct StandingQuerySpec {
  std::string name;
  PlanSpec plan;
  QueryOptions options;
  /// Field positions forming the result key (for diffing); empty = whole
  /// tuple is the key (pure insert/delete diffs, no replaces).
  std::vector<int> key_fields;

  /// Extracts the keyed result relation from a converged run (exactly one
  /// row per live key). Required.
  std::function<Result<std::vector<Tuple>>(const QueryRunResult&)> snapshot;

  /// Builds the per-query patches/seeds for an epoch BEFORE the session
  /// mutates the shared tables (builders read their own pre-update
  /// mirrors). The returned update's `tables` are applied once per epoch by
  /// the session, not once per query. Null = no incremental path: the
  /// session re-derives the query with a fresh RunResident every epoch
  /// (generic REGISTERed RQL queries take this path).
  std::function<Result<Cluster::BaseUpdate>(
      const std::vector<EdgeMutation>& edges)>
      build_update;

  /// Called once per epoch after the session's shared table mutation
  /// succeeds (and after every build_update was constructed), so closures
  /// advance their adjacency mirrors exactly when the tables move. May be
  /// null.
  std::function<void(const std::vector<EdgeMutation>&)> on_tables_mutated;

  /// Called after every successful (re-)convergence so the spec's closure
  /// state (adjacency mirror, converged rank/distance vectors) tracks the
  /// cluster. May be null.
  std::function<Status(const QueryRunResult&)> on_converged;
};

/// One batch on a subscriber cursor: the net result diff of one epoch (or
/// of several folded epochs for a lagging subscriber).
struct ResultBatch {
  /// Epoch this batch brings the subscriber up to (0 = the registration
  /// snapshot; epoch n = state after the n-th ApplyUpdate).
  int64_t epoch = 0;
  /// True when `diffs` is a full-state snapshot (all inserts) rather than
  /// an incremental diff: the first batch after Subscribe.
  bool snapshot = false;
  /// True when this batch folds more than one epoch (slow subscriber).
  bool coalesced = false;
  DeltaVec diffs;

  /// modified()-style visibility: the distinct key projections of every
  /// row this batch touches.
  std::vector<Tuple> ModifiedKeys(const std::vector<int>& key_fields) const;
};

class ServingSession {
 public:
  explicit ServingSession(Cluster* cluster, ServeOptions options = {});
  ~ServingSession();

  ServingSession(const ServingSession&) = delete;
  ServingSession& operator=(const ServingSession&) = delete;

  /// Admits `spec`, runs it to convergence, and leaves it resident.
  /// Returns the query id. ResourceExhausted over the admission cap.
  Result<int> Register(StandingQuerySpec spec);

  /// Compiles an RQL statement — `REGISTER <name> AS <query>` — and admits
  /// it as a standing query on the generic re-run path.
  Result<int> RegisterRql(const std::string& statement);

  /// Evicts the query and closes all its subscriber cursors.
  Status Unregister(int query_id);

  /// Opens a cursor on `query_id`. The converged snapshot is queued as the
  /// cursor's first batch. Returns the subscriber id.
  Result<int> Subscribe(int query_id);
  Status Unsubscribe(int subscriber_id);

  /// One update epoch: applies `edges` to the shared base tables exactly
  /// once, re-converges every registered query (incrementally where the
  /// spec provides build_update, by fresh re-run otherwise or on failover),
  /// and pushes each query's coalesced result diff to its subscribers.
  Status ApplyUpdate(const std::vector<EdgeMutation>& edges,
                     const FaultSchedule& faults = {});

  /// Non-blocking cursor pull; nullopt when the subscriber is caught up.
  std::optional<ResultBatch> Poll(int subscriber_id);

  /// Current keyed result relation of a registered query (the converged
  /// state a new subscriber's snapshot would carry).
  Result<std::vector<Tuple>> CurrentResult(int query_id) const;

  int64_t epoch() const { return epoch_; }
  int query_count() const { return static_cast<int>(queries_.size()); }
  int subscriber_count() const { return static_cast<int>(subscribers_.size()); }
  const std::string& query_name(int query_id) const;
  MetricsRegistry* metrics() { return &metrics_; }

  /// Per-epoch, per-query convergence profiles accumulated across the
  /// session (bench_serving's report rows). Profile names are
  /// "<query>/epoch<k>" ("<query>/register" for the initial runs).
  const std::vector<QueryProfile>& epoch_profiles() const {
    return epoch_profiles_;
  }

 private:
  struct Query {
    StandingQuerySpec spec;
    /// Keyed result relation as of the last converged epoch:
    /// key string -> row.
    std::map<std::string, Tuple> result;
    std::vector<int> subscribers;
  };

  struct Subscriber {
    int query_id = -1;
    /// Bounded cursor (one Message per batch; epoch in target_op,
    /// snapshot flag in target_port).
    std::unique_ptr<Channel> channel;
    /// Overflow fold, strictly newer than everything queued. Delivered
    /// (coalesced) only once the queue drains.
    DeltaVec pending;
    int64_t pending_epoch = -1;
    bool pending_snapshot = false;
  };

  /// Runs `q` from scratch (register / failover path), refreshes its
  /// result relation, and returns the diff against the previous relation.
  Result<DeltaVec> RunFresh(int query_id, const char* label);

  /// Diffs `rows` against q->result, replaces q->result, returns the net
  /// ℤ-set diff (inserts / deletes / replaces by key).
  DeltaVec DiffAndStore(Query* q, const std::vector<Tuple>& rows);

  /// Queues `diffs` (stamped `epoch`) on every subscriber of `query_id`,
  /// folding into the pending batch for lagging cursors.
  void PushToSubscribers(int query_id, int64_t epoch, DeltaVec diffs);

  std::string KeyOf(const Query& q, const Tuple& t) const;

  Cluster* cluster_;
  ServeOptions options_;
  MetricsRegistry metrics_;
  Counter* diffs_pushed_;
  Counter* snapshots_pushed_;
  Counter* sheds_;
  Counter* queue_blocks_;
  Counter* failovers_;
  Counter* epochs_counter_;
  Counter* subscribers_gauge_;
  Timer* push_timer_;

  std::map<int, Query> queries_;
  std::map<int, Subscriber> subscribers_;
  int next_query_id_ = 1;  // 0 is the cluster's legacy slot; never used here
  int next_subscriber_id_ = 0;
  int64_t epoch_ = 0;
  std::vector<QueryProfile> epoch_profiles_;
};

/// Standing-query factories for the two serving exemplars. Both close over
/// a private adjacency mirror + converged-state vector kept current by
/// on_converged, so per-epoch updates ride the exact linear-IVM /
/// affected-set builders of algos/ivm.h.
Result<StandingQuerySpec> MakePageRankStandingQuery(const GraphData& graph,
                                                    const PageRankConfig& config);
Result<StandingQuerySpec> MakeSsspStandingQuery(const GraphData& graph,
                                                const SsspConfig& config);

}  // namespace rex

#endif  // REX_SERVE_SERVE_H_
