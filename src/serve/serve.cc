#include "serve/serve.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.h"
#include "exec/coalesce.h"
#include "rql/compiler.h"
#include "rql/parser.h"

namespace rex {

std::vector<Tuple> ResultBatch::ModifiedKeys(
    const std::vector<int>& key_fields) const {
  // A ->(old) carries the same key in tuple and old_tuple by construction
  // (the diff is keyed), so projecting `tuple` alone covers every op.
  std::vector<Tuple> keys;
  std::set<std::string> seen;
  for (const Delta& d : diffs) {
    Tuple k = key_fields.empty() ? d.tuple : d.tuple.Project(key_fields);
    if (seen.insert(k.ToString()).second) keys.push_back(std::move(k));
  }
  return keys;
}

ServingSession::ServingSession(Cluster* cluster, ServeOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  diffs_pushed_ = metrics_.GetCounter(metrics::kServeDiffsPushed);
  snapshots_pushed_ = metrics_.GetCounter(metrics::kServeSnapshotsPushed);
  sheds_ = metrics_.GetCounter(metrics::kServeSheds);
  queue_blocks_ = metrics_.GetCounter(metrics::kServeQueueBlocks);
  failovers_ = metrics_.GetCounter(metrics::kServeEpochFailovers);
  epochs_counter_ = metrics_.GetCounter(metrics::kServeEpochs);
  subscribers_gauge_ = metrics_.GetCounter(metrics::kServeSubscribers);
  push_timer_ = metrics_.GetTimer(metrics::kServePushTimer);
}

ServingSession::~ServingSession() {
  for (auto& [sid, sub] : subscribers_) sub.channel->Close();
}

Result<int> ServingSession::Register(StandingQuerySpec spec) {
  if (static_cast<int>(queries_.size()) >= options_.max_queries) {
    return Status::ResourceExhausted(
        "serving session at admission cap (" +
        std::to_string(options_.max_queries) + " standing queries)");
  }
  if (!spec.snapshot) {
    return Status::InvalidArgument("standing query '" + spec.name +
                                   "' has no snapshot extractor");
  }
  const int query_id = next_query_id_++;
  Query q;
  q.spec = std::move(spec);
  queries_.emplace(query_id, std::move(q));
  Result<DeltaVec> first = RunFresh(query_id, "register");
  if (!first.ok()) {
    queries_.erase(query_id);
    (void)cluster_->EvictResident(query_id);
    return first.status();
  }
  return query_id;
}

Result<int> ServingSession::RegisterRql(const std::string& statement) {
  REX_ASSIGN_OR_RETURN(rql::Query parsed, rql::Parse(statement));
  if (parsed.register_name.empty()) {
    return Status::InvalidArgument(
        "RegisterRql expects 'REGISTER <name> AS <query>'");
  }
  rql::CompileContext ctx;
  ctx.storage = cluster_->storage();
  ctx.udfs = cluster_->udfs();
  ctx.calibration = ClusterCalibration::Uniform(cluster_->num_workers());
  REX_ASSIGN_OR_RETURN(rql::CompiledQuery compiled,
                       rql::CompileQuery(parsed, ctx));
  StandingQuerySpec spec;
  spec.name = parsed.register_name;
  spec.plan = std::move(compiled.spec);
  // Generic path: the whole output row is the key (duplicate rows collapse
  // to set semantics) and every epoch re-derives with a fresh RunResident —
  // no build_update, so the session's failover path IS the steady state.
  const bool recursive = compiled.recursive;
  spec.snapshot =
      [recursive](const QueryRunResult& r) -> Result<std::vector<Tuple>> {
    return recursive ? r.fixpoint_state : r.results;
  };
  return Register(std::move(spec));
}

Status ServingSession::Unregister(int query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound("no standing query " + std::to_string(query_id));
  }
  for (int sid : it->second.subscribers) {
    auto s = subscribers_.find(sid);
    if (s == subscribers_.end()) continue;
    s->second.channel->Close();
    subscribers_.erase(s);
  }
  queries_.erase(it);
  subscribers_gauge_->Set(static_cast<int64_t>(subscribers_.size()));
  return cluster_->EvictResident(query_id);
}

Result<int> ServingSession::Subscribe(int query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound("no standing query " + std::to_string(query_id));
  }
  const int sid = next_subscriber_id_++;
  Subscriber sub;
  sub.query_id = query_id;
  sub.channel = std::make_unique<Channel>();
  // The session never pushes into a full channel (it folds into pending
  // instead), so the +1 headroom means Push below can't block or shed; the
  // counters are wired anyway so any future blocking shows up in metrics.
  sub.channel->SetCapacity(options_.subscriber_queue_capacity + 1);
  sub.channel->SetBackpressureCounters(queue_blocks_, sheds_);
  DeltaVec snapshot;
  snapshot.reserve(it->second.result.size());
  for (const auto& [key, row] : it->second.result) {
    snapshot.push_back(Delta::Insert(row));
  }
  Message first = Message::Data(query_id, sid, query_id, /*port=*/1,
                                std::move(snapshot));
  first.seq = static_cast<uint64_t>(epoch_);
  sub.channel->Push(std::move(first));
  snapshots_pushed_->Increment();
  it->second.subscribers.push_back(sid);
  subscribers_.emplace(sid, std::move(sub));
  subscribers_gauge_->Set(static_cast<int64_t>(subscribers_.size()));
  return sid;
}

Status ServingSession::Unsubscribe(int subscriber_id) {
  auto it = subscribers_.find(subscriber_id);
  if (it == subscribers_.end()) {
    return Status::NotFound("no subscriber " + std::to_string(subscriber_id));
  }
  auto q = queries_.find(it->second.query_id);
  if (q != queries_.end()) {
    auto& subs = q->second.subscribers;
    subs.erase(std::remove(subs.begin(), subs.end(), subscriber_id),
               subs.end());
  }
  it->second.channel->Close();
  subscribers_.erase(it);
  subscribers_gauge_->Set(static_cast<int64_t>(subscribers_.size()));
  return Status::OK();
}

Status ServingSession::ApplyUpdate(const std::vector<EdgeMutation>& edges,
                                   const FaultSchedule& faults) {
  if (queries_.empty()) {
    return Status::InvalidArgument(
        "ApplyUpdate with no standing queries registered");
  }
  const int64_t next_epoch = epoch_ + 1;

  // Stage 1: build every incremental update against pre-mutation state, so
  // a builder error aborts the epoch before anything moved.
  std::map<int, Cluster::BaseUpdate> updates;
  for (auto& [qid, q] : queries_) {
    if (!q.spec.build_update) continue;
    REX_ASSIGN_OR_RETURN(updates[qid], q.spec.build_update(edges));
  }

  // Stage 2: the shared base-table mutation, applied exactly once per
  // epoch no matter how many standing queries read the graph.
  std::map<std::string, std::vector<DistributedTable::WeightedRow>> tables;
  auto& rows = tables["graph"];
  for (const EdgeMutation& e : edges) {
    if (e.weight == 0) continue;
    rows.push_back({Tuple{Value(e.src), Value(e.dst)}, e.weight});
  }
  if (!rows.empty()) {
    REX_RETURN_NOT_OK(cluster_->MutateTables(tables));
  }
  for (auto& [qid, q] : queries_) {
    if (q.spec.on_tables_mutated) q.spec.on_tables_mutated(edges);
  }

  // Stage 3: re-converge each query — incrementally where possible, by
  // failover re-run otherwise — and fan its net result diff out. The
  // chaos schedule (if any) rides on the first convergence only; a crash
  // it injects still marks the other residents stale, which routes them
  // through the failover path below.
  bool faults_pending = !faults.empty();
  for (auto& [qid, q] : queries_) {
    DeltaVec diffs;
    bool incremental_ok = false;
    auto u = updates.find(qid);
    if (u != updates.end()) {
      Cluster::BaseUpdate update = std::move(u->second);
      update.tables.clear();  // stage 2 already applied the shared mutation
      if (faults_pending) {
        update.faults = faults;
        faults_pending = false;
      }
      Result<QueryRunResult> res = cluster_->ApplyBaseUpdate(qid, update);
      if (res.ok()) {
        Result<std::vector<Tuple>> snap = q.spec.snapshot(*res);
        if (snap.ok()) {
          if (q.spec.on_converged) {
            REX_RETURN_NOT_OK(q.spec.on_converged(*res));
          }
          res->profile.name =
              q.spec.name + "/epoch" + std::to_string(next_epoch);
          epoch_profiles_.push_back(std::move(res->profile));
          diffs = DiffAndStore(&q, *snap);
          incremental_ok = true;
        }
      }
      if (!incremental_ok) {
        REX_LOG(Warn) << "serve: epoch " << next_epoch << " query '"
                      << q.spec.name << "' incremental update failed ("
                      << res.status().ToString()
                      << "); failing over to a fresh run";
      }
    }
    if (!incremental_ok) {
      if (u != updates.end()) failovers_->Increment();
      // Failover (or the generic re-run path): revive anything a crash
      // schedule left dead, then re-derive from the already-mutated
      // tables. Subscribers only ever see the completed epoch.
      REX_RETURN_NOT_OK(cluster_->ReviveFailedWorkers());
      const std::string label = "epoch" + std::to_string(next_epoch);
      REX_ASSIGN_OR_RETURN(diffs, RunFresh(qid, label.c_str()));
    }
    ScopedTimer timed(push_timer_);
    PushToSubscribers(qid, next_epoch, std::move(diffs));
  }

  epoch_ = next_epoch;
  epochs_counter_->Increment();
  return Status::OK();
}

Result<DeltaVec> ServingSession::RunFresh(int query_id, const char* label) {
  Query& q = queries_.at(query_id);
  REX_ASSIGN_OR_RETURN(QueryRunResult run,
                       cluster_->RunResident(query_id, q.spec.plan,
                                             q.spec.options));
  REX_ASSIGN_OR_RETURN(std::vector<Tuple> rows, q.spec.snapshot(run));
  if (q.spec.on_converged) REX_RETURN_NOT_OK(q.spec.on_converged(run));
  run.profile.name = q.spec.name + "/" + label;
  epoch_profiles_.push_back(std::move(run.profile));
  return DiffAndStore(&q, rows);
}

DeltaVec ServingSession::DiffAndStore(Query* q,
                                      const std::vector<Tuple>& rows) {
  std::map<std::string, Tuple> next;
  for (const Tuple& t : rows) next[KeyOf(*q, t)] = t;
  DeltaVec diffs;
  for (const auto& [key, old_row] : q->result) {
    auto it = next.find(key);
    if (it == next.end()) {
      diffs.push_back(Delta::Delete(old_row));
    } else if (!(it->second == old_row)) {
      diffs.push_back(Delta::Replace(old_row, it->second));
    }
  }
  for (const auto& [key, new_row] : next) {
    if (q->result.find(key) == q->result.end()) {
      diffs.push_back(Delta::Insert(new_row));
    }
  }
  q->result = std::move(next);
  return diffs;
}

void ServingSession::PushToSubscribers(int query_id, int64_t epoch,
                                       DeltaVec diffs) {
  // Epochs that leave the result relation untouched push nothing: an empty
  // batch carries no information a cursor consumer can act on.
  if (diffs.empty()) return;
  Query& q = queries_.at(query_id);
  for (int sid : q.subscribers) {
    Subscriber& sub = subscribers_.at(sid);
    const bool lagging =
        sub.pending_snapshot || !sub.pending.empty() ||
        sub.channel->size() >= options_.subscriber_queue_capacity;
    if (!lagging) {
      Message m = Message::Data(query_id, sid, query_id, /*port=*/0, diffs);
      m.seq = static_cast<uint64_t>(epoch);
      sub.channel->Push(std::move(m));
      diffs_pushed_->Add(static_cast<int64_t>(diffs.size()));
      continue;
    }
    // Cursor overflow: fold this epoch into the subscriber's single
    // pending batch instead of growing the queue. The fold is a ℤ-set
    // coalesce keyed like the result relation, so N missed epochs always
    // collapse to one net diff.
    sheds_->Increment();
    sub.pending_epoch = epoch;
    if (sub.pending_snapshot) continue;  // snapshot already supersedes all
    sub.pending.insert(sub.pending.end(), diffs.begin(), diffs.end());
    CoalesceOptions copts;
    copts.key_fields = q.spec.key_fields;
    CoalesceStats stats;
    Result<DeltaVec> folded =
        DeltaCoalescer(copts).Coalesce(std::move(sub.pending), &stats);
    if (folded.ok()) {
      sub.pending = std::move(*folded);
    } else {
      // Weight overflow across folded epochs (pathological): degrade to a
      // full snapshot at next Poll rather than ship a wrong net diff.
      sub.pending.clear();
      sub.pending_snapshot = true;
    }
  }
}

std::optional<ResultBatch> ServingSession::Poll(int subscriber_id) {
  auto it = subscribers_.find(subscriber_id);
  if (it == subscribers_.end()) return std::nullopt;
  Subscriber& sub = it->second;
  if (std::optional<Message> m = sub.channel->TryPop()) {
    ResultBatch batch;
    batch.epoch = static_cast<int64_t>(m->seq);
    batch.snapshot = (m->target_port & 1) != 0;
    batch.coalesced = (m->target_port & 2) != 0;
    batch.diffs = std::move(m->deltas);
    return batch;
  }
  // Queue drained: deliver the overflow fold (strictly newer than anything
  // that was queued, so ordering is preserved).
  if (sub.pending_snapshot) {
    ResultBatch batch;
    batch.epoch = sub.pending_epoch;
    batch.snapshot = true;
    batch.coalesced = true;
    const Query& q = queries_.at(sub.query_id);
    batch.diffs.reserve(q.result.size());
    for (const auto& [key, row] : q.result) {
      batch.diffs.push_back(Delta::Insert(row));
    }
    sub.pending_snapshot = false;
    sub.pending_epoch = -1;
    snapshots_pushed_->Increment();
    return batch;
  }
  if (!sub.pending.empty()) {
    ResultBatch batch;
    batch.epoch = sub.pending_epoch;
    batch.coalesced = true;
    batch.diffs = std::move(sub.pending);
    sub.pending.clear();
    sub.pending_epoch = -1;
    diffs_pushed_->Add(static_cast<int64_t>(batch.diffs.size()));
    return batch;
  }
  return std::nullopt;
}

Result<std::vector<Tuple>> ServingSession::CurrentResult(
    int query_id) const {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound("no standing query " + std::to_string(query_id));
  }
  std::vector<Tuple> rows;
  rows.reserve(it->second.result.size());
  for (const auto& [key, row] : it->second.result) rows.push_back(row);
  return rows;
}

const std::string& ServingSession::query_name(int query_id) const {
  static const std::string kUnknown = "<unregistered>";
  auto it = queries_.find(query_id);
  return it == queries_.end() ? kUnknown : it->second.spec.name;
}

std::string ServingSession::KeyOf(const Query& q, const Tuple& t) const {
  if (q.spec.key_fields.empty()) return t.ToString();
  return t.Project(q.spec.key_fields).ToString();
}

Result<StandingQuerySpec> MakePageRankStandingQuery(
    const GraphData& graph, const PageRankConfig& config) {
  struct State {
    Adjacency adj;
    std::vector<double> ranks;
    int64_t num_vertices = 0;
    double damping = 0.85;
  };
  auto st = std::make_shared<State>();
  st->adj = AdjacencyFromGraph(graph);
  st->num_vertices = graph.num_vertices;
  st->damping = config.damping;

  StandingQuerySpec spec;
  REX_ASSIGN_OR_RETURN(spec.plan, BuildPageRankDeltaPlan(config));
  spec.name = "pagerank" + config.name_suffix;
  spec.key_fields = {0};
  const PlanSpec plan = spec.plan;  // builder closure needs the node ids
  spec.snapshot =
      [st](const QueryRunResult& r) -> Result<std::vector<Tuple>> {
    REX_ASSIGN_OR_RETURN(std::vector<double> ranks,
                         RanksFromState(r.fixpoint_state, st->num_vertices));
    std::vector<Tuple> rows;
    rows.reserve(static_cast<size_t>(st->num_vertices));
    for (int64_t v = 0; v < st->num_vertices; ++v) {
      rows.push_back(Tuple{Value(v), Value(ranks[static_cast<size_t>(v)])});
    }
    return rows;
  };
  spec.on_converged = [st](const QueryRunResult& r) -> Status {
    REX_ASSIGN_OR_RETURN(st->ranks,
                         RanksFromState(r.fixpoint_state, st->num_vertices));
    return Status::OK();
  };
  spec.build_update = [st, plan](const std::vector<EdgeMutation>& edges) {
    return BuildPageRankBaseUpdate(plan, edges, st->ranks, st->adj,
                                   st->damping);
  };
  spec.on_tables_mutated = [st](const std::vector<EdgeMutation>& edges) {
    ApplyEdgeMutations(&st->adj, edges);
  };
  return spec;
}

Result<StandingQuerySpec> MakeSsspStandingQuery(const GraphData& graph,
                                                const SsspConfig& config) {
  struct State {
    Adjacency adj;
    std::vector<int64_t> dist;
    int64_t num_vertices = 0;
    int64_t source = 0;
  };
  auto st = std::make_shared<State>();
  st->adj = AdjacencyFromGraph(graph);
  st->num_vertices = graph.num_vertices;
  st->source = config.source;

  StandingQuerySpec spec;
  REX_ASSIGN_OR_RETURN(spec.plan, BuildSsspDeltaPlan(config));
  spec.name = "sssp" + config.name_suffix;
  spec.key_fields = {0};
  const PlanSpec plan = spec.plan;
  spec.snapshot =
      [st](const QueryRunResult& r) -> Result<std::vector<Tuple>> {
    REX_ASSIGN_OR_RETURN(
        std::vector<int64_t> dist,
        DistancesFromState(r.fixpoint_state, st->num_vertices));
    std::vector<Tuple> rows;
    rows.reserve(static_cast<size_t>(st->num_vertices));
    for (int64_t v = 0; v < st->num_vertices; ++v) {
      rows.push_back(Tuple{Value(v), Value(dist[static_cast<size_t>(v)])});
    }
    return rows;
  };
  spec.on_converged = [st](const QueryRunResult& r) -> Status {
    REX_ASSIGN_OR_RETURN(
        st->dist, DistancesFromState(r.fixpoint_state, st->num_vertices));
    return Status::OK();
  };
  spec.build_update = [st, plan](const std::vector<EdgeMutation>& edges) {
    return BuildSsspBaseUpdate(plan, edges, st->dist, st->adj, st->source);
  };
  spec.on_tables_mutated = [st](const std::vector<EdgeMutation>& edges) {
    ApplyEdgeMutations(&st->adj, edges);
  };
  return spec;
}

}  // namespace rex
