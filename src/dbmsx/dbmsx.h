// The "DBMS X" baseline (§6.4): recursive SQL on a single node.
//
// SQL-99 recursion ACCUMULATES answers — it cannot revise them (§1, §2).
// We reproduce exactly that execution model with the engine's kAccumulate
// fixpoint on a one-worker cluster: every iteration's (vertex, rank,
// iteration) tuples are appended to the recursive relation, nothing is
// ever replaced, duplicate derivations are eliminated against the ENTIRE
// accumulated store, and the final answer is the last iteration's slice.
// The growing state and the re-derivation of every tuple every iteration
// are the inefficiencies REX's refinement-of-state model removes.
#ifndef REX_DBMSX_DBMSX_H_
#define REX_DBMSX_DBMSX_H_

#include "cluster/cluster.h"
#include "data/generators.h"
#include "engine/plan_spec.h"

namespace rex {

struct DbmsXConfig {
  double damping = 0.85;
  int iterations = 20;
  std::string name_suffix;
};

/// Registers the XJoinPR handler (rank distribution with an iteration
/// counter attribute, the paper's §3.2 optimization note).
Status RegisterDbmsXUdfs(UdfRegistry* registry, const DbmsXConfig& config);

/// Recursive-SQL PageRank plan over graph/vertices tables.
Result<PlanSpec> BuildDbmsXPageRankPlan(const DbmsXConfig& config);

struct DbmsXRun {
  std::vector<double> ranks;
  /// Total tuples retained by the recursive relation at the end — grows
  /// with the iteration count (accumulation, not refinement).
  int64_t accumulated_tuples = 0;
  double total_seconds = 0;
  std::vector<StratumReport> strata;
};

/// Runs recursive-SQL PageRank on a single-node cluster.
Result<DbmsXRun> RunDbmsXPageRank(const GraphData& graph,
                                  const DbmsXConfig& config);

}  // namespace rex

#endif  // REX_DBMSX_DBMSX_H_
