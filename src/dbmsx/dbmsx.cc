#include "dbmsx/dbmsx.h"

#include "algos/pagerank.h"

namespace rex {

namespace {

/// Distributes damped rank with an iteration counter: delta is
/// (v, rank, iter); emits (dst, contribution, iter + 1) per out-edge plus
/// the zero self-contribution that keeps sink-free vertices deriving.
JoinHandler MakeXJoin(const DbmsXConfig& config) {
  JoinHandler h;
  h.name = "XJoinPR" + config.name_suffix;
  const double damping = config.damping;
  h.update = [damping](TupleSet* /*delta_side*/, TupleSet* graph_bucket,
                       const Delta& d) -> Result<DeltaVec> {
    if (d.tuple.size() < 3) {
      return Status::InvalidArgument("XJoinPR expects (v, rank, iter)");
    }
    const Value& v = d.tuple.field(0);
    REX_ASSIGN_OR_RETURN(double rank, d.tuple.field(1).ToDouble());
    REX_ASSIGN_OR_RETURN(int64_t iter, d.tuple.field(2).ToInt());
    DeltaVec out;
    const size_t outdeg = graph_bucket->size();
    out.reserve(outdeg + 1);
    if (outdeg > 0) {
      const double share = damping * rank / static_cast<double>(outdeg);
      for (const Tuple& edge : *graph_bucket) {
        out.push_back(Delta::Update(
            Tuple{edge.field(1), Value(share), Value(iter + 1)}));
      }
    }
    out.push_back(Delta::Update(Tuple{v, Value(0.0), Value(iter + 1)}));
    return out;
  };
  return h;
}

}  // namespace

Status RegisterDbmsXUdfs(UdfRegistry* registry, const DbmsXConfig& config) {
  return registry->RegisterJoinHandler(MakeXJoin(config));
}

Result<PlanSpec> BuildDbmsXPageRankPlan(const DbmsXConfig& config) {
  PlanSpec plan;
  ScanOp::Params graph_scan;
  graph_scan.table = "graph";
  graph_scan.feeds_immutable = true;
  int g = plan.AddScan(graph_scan);

  ScanOp::Params vertex_scan;
  vertex_scan.table = "vertices";
  int vs = plan.AddScan(vertex_scan);
  // Base case: (v, 1.0, iteration 0).
  int base = plan.AddProject(
      vs, {Expr::Column(0, "v"), Expr::Const(Value(1.0)),
           Expr::Const(Value(int64_t{0}))});

  FixpointOp::Params fp_params;
  fp_params.mode = FixpointOp::Mode::kAccumulate;
  int fp = plan.AddFixpoint(base, fp_params);

  HashJoinOp::Params jp;
  jp.left_keys = {0};
  jp.right_keys = {0};
  jp.immutable[0] = true;
  jp.handler = "XJoinPR" + config.name_suffix;
  jp.handler_owns_all = true;
  int join = plan.AddHashJoin(g, fp, jp);

  // Sum contributions per (target, iteration); recursive SQL derives a
  // fresh tuple for every vertex every iteration.
  GroupByOp::Params agg;
  agg.key_fields = {0, 2};
  agg.aggs = {GroupByOp::AggSpec{AggKind::kSum, 1, "contrib"}};
  agg.mode = GroupByOp::Mode::kStratum;
  int summed = plan.AddGroupBy(join, agg);
  RehashOp::Params rh;
  rh.key_fields = {0};
  int routed = plan.AddRehash(summed, rh);
  // (v, iter, sum) -> (v, teleport + sum, iter).
  int next = plan.AddProject(
      routed,
      {Expr::Column(0, "v"),
       Expr::Binary(BinOp::kAdd, Expr::Const(Value(1.0 - config.damping)),
                    Expr::Column(2, "contrib")),
       Expr::Column(1, "iter")});
  plan.ConnectRecursive(fp, next);
  REX_RETURN_NOT_OK(plan.Validate());
  return plan;
}

Result<DbmsXRun> RunDbmsXPageRank(const GraphData& graph,
                                  const DbmsXConfig& config) {
  EngineConfig engine;
  engine.num_workers = 1;  // single machine (§6.4)
  engine.replication = 1;
  engine.checkpoint_deltas = false;  // DBMSs restart failed queries
  Cluster cluster(engine);
  REX_RETURN_NOT_OK(LoadGraphTables(&cluster, graph));
  REX_RETURN_NOT_OK(RegisterDbmsXUdfs(cluster.udfs(), config));
  REX_ASSIGN_OR_RETURN(PlanSpec plan, BuildDbmsXPageRankPlan(config));

  QueryOptions options;
  const int iterations = config.iterations;
  options.terminate = [iterations](int stratum, const VoteStats&) {
    return stratum >= iterations;
  };
  REX_ASSIGN_OR_RETURN(QueryRunResult run, cluster.Run(plan, options));

  DbmsXRun out;
  out.total_seconds = run.total_seconds;
  out.strata = run.strata;
  out.accumulated_tuples = static_cast<int64_t>(run.fixpoint_state.size());
  // The answer is the deepest iteration's slice of the accumulated store.
  int64_t max_iter = 0;
  for (const Tuple& t : run.fixpoint_state) {
    REX_ASSIGN_OR_RETURN(int64_t it, t.field(2).ToInt());
    max_iter = std::max(max_iter, it);
  }
  out.ranks.assign(static_cast<size_t>(graph.num_vertices), 0.0);
  for (const Tuple& t : run.fixpoint_state) {
    REX_ASSIGN_OR_RETURN(int64_t it, t.field(2).ToInt());
    if (it != max_iter) continue;
    REX_ASSIGN_OR_RETURN(int64_t v, t.field(0).ToInt());
    REX_ASSIGN_OR_RETURN(double rank, t.field(1).ToDouble());
    out.ranks[static_cast<size_t>(v)] = rank;
  }
  return out;
}

}  // namespace rex
