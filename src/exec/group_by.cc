#include "exec/group_by.h"

#include "exec/vectorized.h"

namespace rex {

namespace {
constexpr uint64_t kGroupHashSeed = 0x9ae16a3b2f90404fULL;

uint64_t HashKey(const std::vector<Value>& key) {
  uint64_t h = kGroupHashSeed;
  for (const Value& v : key) h = HashCombine(h, v.Hash());
  return h;
}
}  // namespace

Status GroupByOp::Open(ExecContext* ctx) {
  REX_RETURN_NOT_OK(Operator::Open(ctx));
  // The key-match loops index tuples through static_cast<size_t>, so a
  // negative index would wrap to a huge offset instead of failing; reject
  // it at plan time.
  for (int k : params_.key_fields) {
    if (k < 0) {
      return Status::InvalidArgument(
          "group-by key field index must be non-negative, got " +
          std::to_string(k));
    }
  }
  if (!params_.uda.empty()) {
    if (!params_.aggs.empty()) {
      return Status::InvalidArgument(
          "group-by cannot mix built-in aggregates with a UDA");
    }
    REX_ASSIGN_OR_RETURN(uda_, ctx->udfs->GetUda(params_.uda));
  } else if (params_.aggs.empty()) {
    return Status::InvalidArgument("group-by needs aggregates or a UDA");
  }
  coalescer_.reset();
  columnar_ = ctx->config->columnar_batches;
  if (columnar_) {
    batch_rows_ = ctx->metrics->GetCounter(metrics::kBatchRows);
    batch_batches_ = ctx->metrics->GetCounter(metrics::kBatchBatches);
    batch_fallback_rows_ =
        ctx->metrics->GetCounter(metrics::kBatchFallbackRows);
  }
  if (ctx->config->coalesce_deltas) {
    CoalesceOptions opts;
    if (uda_ == nullptr) {
      // Output layout: key fields first, then one result per aggregate.
      for (size_t i = 0; i < params_.key_fields.size(); ++i) {
        opts.key_fields.push_back(static_cast<int>(i));
      }
    }
    opts.columnar = columnar_;
    coalescer_.emplace(std::move(opts));
    deltas_coalesced_ = ctx->metrics->GetCounter(metrics::kDeltasCoalesced);
    coalesce_bytes_saved_ =
        ctx->metrics->GetCounter(metrics::kCoalesceBytesSaved);
  }
  return Status::OK();
}

std::vector<Value> GroupByOp::KeyOf(const Tuple& t) const {
  std::vector<Value> key;
  key.reserve(params_.key_fields.size());
  for (int k : params_.key_fields) {
    key.push_back(t.field(static_cast<size_t>(k)));
  }
  return key;
}

GroupByOp::Group* GroupByOp::FindOrCreate(const std::vector<Value>& key) {
  auto& chain = groups_.FindOrCreate(HashKey(key));
  for (Group& g : chain) {
    if (g.key == key) return &g;
  }
  chain.push_back(Group{});
  Group& g = chain.back();
  g.key = key;
  if (uda_ != nullptr) {
    g.uda_state = uda_->init();
  } else {
    g.agg_states.reserve(params_.aggs.size());
    for (const AggSpec& spec : params_.aggs) {
      g.agg_states.push_back(GetAggFunction(spec.kind)->NewState());
    }
  }
  return &g;
}

GroupByOp::Group* GroupByOp::FindOrCreateFromTuple(const Tuple& t) {
  // Hot path: hash the key fields in place; the key vector materializes
  // only when a new group is created.
  uint64_t h = kGroupHashSeed;
  for (int k : params_.key_fields) {
    h = HashCombine(h, t.field(static_cast<size_t>(k)).Hash());
  }
  auto& chain = groups_.FindOrCreate(h);
  for (Group& g : chain) {
    bool match = g.key.size() == params_.key_fields.size();
    for (size_t i = 0; match && i < g.key.size(); ++i) {
      match = g.key[i] == t.field(static_cast<size_t>(params_.key_fields[i]));
    }
    if (match) return &g;
  }
  chain.push_back(Group{});
  Group& g = chain.back();
  g.key = KeyOf(t);
  if (uda_ != nullptr) {
    g.uda_state = uda_->init();
  } else {
    g.agg_states.reserve(params_.aggs.size());
    for (const AggSpec& spec : params_.aggs) {
      g.agg_states.push_back(GetAggFunction(spec.kind)->NewState());
    }
  }
  return &g;
}

GroupByOp::Group* GroupByOp::FindOrCreateFromBatch(const DeltaBatch& batch,
                                                   size_t row, uint64_t h) {
  auto& chain = groups_.FindOrCreate(h);
  for (Group& g : chain) {
    bool match = g.key.size() == params_.key_fields.size();
    for (size_t i = 0; match && i < g.key.size(); ++i) {
      match = batch.CellEqualsValue(
          row, static_cast<size_t>(params_.key_fields[i]), g.key[i]);
    }
    if (match) return &g;
  }
  chain.push_back(Group{});
  Group& g = chain.back();
  g.key.reserve(params_.key_fields.size());
  for (int k : params_.key_fields) {
    g.key.push_back(batch.ValueAt(row, static_cast<size_t>(k)));
  }
  // The columnar path only runs with built-in aggregates (no UDA state).
  g.agg_states.reserve(params_.aggs.size());
  for (const AggSpec& spec : params_.aggs) {
    g.agg_states.push_back(GetAggFunction(spec.kind)->NewState());
  }
  return &g;
}

Result<bool> GroupByOp::ConsumeColumnar(const DeltaVec& deltas) {
  std::optional<DeltaBatch> batch = DeltaBatch::FromDeltas(deltas);
  if (!batch.has_value() || !batch->KeyFieldsInRange(params_.key_fields)) {
    batch_fallback_rows_->Add(static_cast<int64_t>(deltas.size()));
    return false;
  }
  for (const AggSpec& spec : params_.aggs) {
    if (spec.input_field < 0) continue;  // count(*): any-value input
    if (static_cast<size_t>(spec.input_field) >= batch->NumColumns() ||
        batch->column(static_cast<size_t>(spec.input_field)).type ==
            BatchColType::kString) {
      // String inputs (min/max over strings) keep the boxed scalar path.
      batch_fallback_rows_->Add(static_cast<int64_t>(deltas.size()));
      return false;
    }
  }
  const size_t n = batch->NumRows();
  std::vector<uint64_t> hashes;
  if (params_.key_fields.empty()) {
    // Global group: the scalar hash loop folds zero fields, leaving the
    // bare seed (NOT the whole-tuple hash SeededKeyHashRows would give).
    hashes.assign(n, kGroupHashSeed);
  } else {
    SeededKeyHashRows(*batch, kGroupHashSeed, params_.key_fields, &hashes);
  }
  batch_rows_->Add(static_cast<int64_t>(n));
  batch_batches_->Add(1);
  for (size_t r = 0; r < n; ++r) {
    Group* g = FindOrCreateFromBatch(*batch, r, hashes[r]);
    g->touched = true;
    // Same signed multiplicity ApplyBuiltin derives: kDelete → -w,
    // kInsert/kUpdate → +w (the batch domain excludes kReplace/kBatch).
    const int64_t w = batch->op(r) == DeltaOp::kDelete ? -batch->weight(r)
                                                       : batch->weight(r);
    for (size_t i = 0; i < params_.aggs.size(); ++i) {
      const AggSpec& spec = params_.aggs[i];
      const AggFunction* fn = GetAggFunction(spec.kind);
      AggState* state = g->agg_states[i].get();
      if (spec.input_field < 0) {
        REX_RETURN_NOT_OK(fn->ApplyWeightedInt(state, 1, w));
        continue;
      }
      const BatchColumn& col =
          batch->column(static_cast<size_t>(spec.input_field));
      if (col.type == BatchColType::kInt) {
        REX_RETURN_NOT_OK(fn->ApplyWeightedInt(state, col.ints[r], w));
      } else {
        REX_RETURN_NOT_OK(fn->ApplyWeightedDouble(state, col.doubles[r], w));
      }
    }
  }
  return true;
}

Status GroupByOp::ApplyBuiltin(Group* g, DeltaOp op, const Tuple& t,
                               const Tuple& old_t, int64_t weight) {
  // The built-in delta handler is derived from the weighted ℤ-set model:
  // every annotation reduces to ApplyWeighted with a signed multiplicity
  // (+() → +w, -() → -w, ->(t') → -1·old then +1·new), which linear
  // aggregates fold in O(1) and min/max replay per unit.
  for (size_t i = 0; i < params_.aggs.size(); ++i) {
    const AggSpec& spec = params_.aggs[i];
    const AggFunction* fn = GetAggFunction(spec.kind);
    AggState* state = g->agg_states[i].get();
    const Value in = spec.input_field < 0
                         ? Value(static_cast<int64_t>(1))
                         : t.field(static_cast<size_t>(spec.input_field));
    switch (op) {
      case DeltaOp::kInsert:
      case DeltaOp::kUpdate:  // hidden-attribute rule: plain insert
        REX_RETURN_NOT_OK(fn->ApplyWeighted(state, in, weight));
        break;
      case DeltaOp::kDelete:
        REX_RETURN_NOT_OK(fn->ApplyWeighted(state, in, -weight));
        break;
      case DeltaOp::kReplace: {
        const Value old_in =
            spec.input_field < 0
                ? Value(static_cast<int64_t>(1))
                : old_t.field(static_cast<size_t>(spec.input_field));
        REX_RETURN_NOT_OK(fn->Delete(state, old_in));
        REX_RETURN_NOT_OK(fn->Insert(state, in));
        break;
      }
      case DeltaOp::kBatch:
        // Wire-only packing; the receiving rehash expands it.
        return Status::Internal("packed batch delta reached a group-by");
    }
  }
  return Status::OK();
}

Status GroupByOp::ConsumeDeltas(int, DeltaVec deltas) {
  tuples_processed_->Add(static_cast<int64_t>(deltas.size()));
  if (columnar_ && uda_ == nullptr && !deltas.empty()) {
    REX_ASSIGN_OR_RETURN(bool handled, ConsumeColumnar(deltas));
    // Built-ins never stream partials; emission happens at punctuation.
    if (handled) return Emit(DeltaVec());
  }
  DeltaVec streamed;
  for (Delta& d : deltas) {
    if (uda_ != nullptr) {
      Group* g = FindOrCreateFromTuple(d.tuple);
      g->touched = true;
      Delta arg = d;
      if (!params_.uda_input_fields.empty()) {
        arg.tuple = d.tuple.Project(params_.uda_input_fields);
        if (d.op == DeltaOp::kReplace) {
          arg.old_tuple = d.old_tuple.Project(params_.uda_input_fields);
        }
      }
      // ℤ-set weights on set-plane deltas decompose into unit
      // applications. That derivation is only sound when the UDA declares
      // itself linear; δ() weights stay opaque and ride through to the
      // handler untouched.
      if (arg.weight < 0 && (arg.op == DeltaOp::kInsert ||
                             arg.op == DeltaOp::kDelete)) {
        // Canonicalize: insert of weight -w is a delete of weight w.
        arg.op = arg.op == DeltaOp::kInsert ? DeltaOp::kDelete
                                            : DeltaOp::kInsert;
        arg.weight = -arg.weight;
      }
      int64_t reps = 1;
      if (arg.weight != 1 && (arg.op == DeltaOp::kInsert ||
                              arg.op == DeltaOp::kDelete)) {
        if (arg.weight == 0) continue;
        if (!uda_->linear) {
          return Status::InvalidArgument(
              "weighted delta (w=" + std::to_string(arg.weight) +
              ") into non-linear UDA '" + params_.uda + "'");
        }
        reps = arg.weight;
        arg.weight = 1;
      }
      for (int64_t rep = 0; rep < reps; ++rep) {
        REX_ASSIGN_OR_RETURN(DeltaVec partial,
                             uda_->agg_state(g->uda_state.get(), arg));
        for (Delta& p : partial) {
          if (params_.prefix_group_key) {
            Tuple prefixed(g->key);
            p.tuple = prefixed.Concat(p.tuple);
          }
          streamed.push_back(std::move(p));
        }
      }
      continue;
    }
    if (d.op == DeltaOp::kReplace && KeyOf(d.tuple) != KeyOf(d.old_tuple)) {
      // Group migration: delete from the old group, insert into the new.
      Group* old_g = FindOrCreate(KeyOf(d.old_tuple));
      old_g->touched = true;
      REX_RETURN_NOT_OK(
          ApplyBuiltin(old_g, DeltaOp::kDelete, d.old_tuple, d.old_tuple));
      Group* new_g = FindOrCreate(KeyOf(d.tuple));
      new_g->touched = true;
      REX_RETURN_NOT_OK(
          ApplyBuiltin(new_g, DeltaOp::kInsert, d.tuple, d.tuple));
      continue;
    }
    Group* g = FindOrCreateFromTuple(d.tuple);
    g->touched = true;
    REX_RETURN_NOT_OK(ApplyBuiltin(g, d.op, d.tuple, d.old_tuple, d.weight));
  }
  return Emit(std::move(streamed));
}

Result<Tuple> GroupByOp::CurrentResult(const Group& g) const {
  std::vector<Value> fields(g.key.begin(), g.key.end());
  fields.reserve(g.key.size() + params_.aggs.size());
  for (size_t i = 0; i < params_.aggs.size(); ++i) {
    REX_ASSIGN_OR_RETURN(Value v, GetAggFunction(params_.aggs[i].kind)
                                      ->Current(g.agg_states[i].get()));
    fields.push_back(std::move(v));
  }
  return Tuple(std::move(fields));
}

bool GroupByOp::GroupEmpty(const Group& g) const {
  for (size_t i = 0; i < params_.aggs.size(); ++i) {
    if (GetAggFunction(params_.aggs[i].kind)->Count(g.agg_states[i].get()) >
        0) {
      return false;
    }
  }
  return true;
}

Status GroupByOp::OnAllPunct(const Punctuation&) {
  DeltaVec out;
  for (auto& [hash, chain] : groups_) {
    for (Group& g : chain) {
      if (!g.touched) continue;
      if (uda_ != nullptr) {
        REX_ASSIGN_OR_RETURN(DeltaVec finals,
                             uda_->agg_result(g.uda_state.get()));
        for (Delta& f : finals) {
          if (params_.prefix_group_key) {
            Tuple prefixed(g.key);
            f.tuple = prefixed.Concat(f.tuple);
          }
          out.push_back(std::move(f));
        }
        g.touched = false;
        continue;
      }
      if (params_.mode == Mode::kStratum) {
        if (!GroupEmpty(g)) {
          REX_ASSIGN_OR_RETURN(Tuple result, CurrentResult(g));
          out.push_back(Delta::Insert(std::move(result)));
        }
        g.touched = false;
        continue;
      }
      // Persistent mode: emit insert / replace / delete transitions.
      if (GroupEmpty(g)) {
        if (g.has_emitted) {
          out.push_back(Delta::Delete(g.last_emitted));
          g.has_emitted = false;
          g.last_emitted = Tuple();
        }
        g.touched = false;
        continue;
      }
      REX_ASSIGN_OR_RETURN(Tuple result, CurrentResult(g));
      if (!g.has_emitted) {
        out.push_back(Delta::Insert(result));
        g.has_emitted = true;
        g.last_emitted = std::move(result);
      } else if (!(g.last_emitted == result)) {
        out.push_back(Delta::Replace(g.last_emitted, result));
        g.last_emitted = std::move(result);
      }
      g.touched = false;
    }
  }
  if (coalescer_.has_value() && out.size() > 1) {
    CoalesceStats stats;
    REX_ASSIGN_OR_RETURN(out, coalescer_->Coalesce(std::move(out), &stats));
    deltas_coalesced_->Add(stats.folded);
    coalesce_bytes_saved_->Add(stats.bytes_saved);
    if (stats.columnar_rows > 0) batch_rows_->Add(stats.columnar_rows);
  }
  REX_RETURN_NOT_OK(Emit(std::move(out)));
  if (params_.mode == Mode::kStratum) groups_.Clear();
  return Status::OK();
}

Status GroupByOp::ResetTransientState() {
  REX_RETURN_NOT_OK(Operator::ResetTransientState());
  if (params_.mode == Mode::kStratum) groups_.Clear();
  return Status::OK();
}

size_t GroupByOp::NumGroups() const {
  size_t n = 0;
  for (const auto& [hash, chain] : groups_) n += chain.size();
  return n;
}

}  // namespace rex
