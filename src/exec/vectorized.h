// Vectorized kernels over columnar DeltaBatches: a statically-typed
// predicate compiler for filter expressions and whole-column hash kernels
// for partitioning and keyed-state probes.
//
// The contract for every kernel here is bit-identical equivalence with the
// scalar path it replaces. The predicate compiler enforces that by
// refusing (Compile returns nullopt) any expression it cannot prove
// error-free and type-stable over the batch's column types: UDF calls,
// string/list/null operands, divisions or modulos whose divisor is not a
// nonzero literal, and AND/OR over non-boolean subexpressions all fall
// back to the scalar row-at-a-time evaluator, which preserves the exact
// error and short-circuit semantics of EvalExpr. What does compile is a
// total function: evaluating it column-at-a-time yields exactly the mask
// EvalPredicate would produce row by row.
#ifndef REX_EXEC_VECTORIZED_H_
#define REX_EXEC_VECTORIZED_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/delta_batch.h"
#include "exec/expr.h"

namespace rex {

/// A filter predicate compiled against a batch column-type signature.
/// Compilation is per (expression, schema) pair; operators cache the
/// compiled form keyed by the column types of the batches they see.
class CompiledPredicate {
 public:
  /// Compiles `expr` for batches whose columns have types `schema`.
  /// Returns nullopt if any subexpression could error or is not statically
  /// typed — the caller must use the scalar evaluator.
  static std::optional<CompiledPredicate> Compile(
      const Expr& expr, const std::vector<BatchColType>& schema);

  /// Evaluates the predicate over every row: mask->at(i) != 0 iff
  /// EvalPredicate(expr, row_i) would return true. `batch` must have the
  /// column types this predicate was compiled for.
  void Eval(const DeltaBatch& batch, std::vector<uint8_t>* mask) const;

  struct Node;

 private:
  explicit CompiledPredicate(std::shared_ptr<const Node> root)
      : root_(std::move(root)) {}
  std::shared_ptr<const Node> root_;
};

/// hashes->at(i) = PartitionHash(row i, key_fields), computed
/// column-at-a-time (string fields hash once per distinct interned
/// string). Preconditions: batch.KeyFieldsInRange(key_fields) and
/// !key_fields.empty().
void PartitionHashRows(const DeltaBatch& batch,
                       const std::vector<int>& key_fields,
                       std::vector<uint64_t>* hashes);

/// hashes->at(i) = `seed` folded with HashCombine over row i's key-field
/// value hashes — the keyed-state hash used by group-by / join / fixpoint.
/// An empty `key_fields` hashes every column (whole-tuple key).
void SeededKeyHashRows(const DeltaBatch& batch, uint64_t seed,
                       const std::vector<int>& key_fields,
                       std::vector<uint64_t>* hashes);

}  // namespace rex

#endif  // REX_EXEC_VECTORIZED_H_
