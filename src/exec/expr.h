// Scalar expression trees evaluated over tuples: column references,
// literals, arithmetic/comparison/boolean operators, and scalar UDF calls.
// Used by filter predicates, projections, and RQL lowering.
#ifndef REX_EXEC_EXPR_H_
#define REX_EXEC_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"
#include "exec/udf_registry.h"

namespace rex {

enum class BinOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* BinOpName(BinOp op);

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// An immutable expression node.
struct Expr {
  enum class Kind : uint8_t { kColumn, kConst, kBinary, kCall, kNot };

  Kind kind;

  // kColumn
  int column = -1;
  std::string column_name;  // for display / late binding in RQL

  // kConst
  Value constant;

  // kBinary
  BinOp op = BinOp::kAdd;
  ExprPtr lhs;
  ExprPtr rhs;

  // kCall (scalar UDF by name) — args also used by kNot (args[0])
  std::string fn_name;
  std::vector<ExprPtr> args;

  std::string ToString() const;

  static ExprPtr Column(int index, std::string name = "");
  static ExprPtr Const(Value v);
  static ExprPtr Binary(BinOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Call(std::string fn, std::vector<ExprPtr> args);
  static ExprPtr Not(ExprPtr e);
};

/// Evaluates `expr` against `tuple`. `registry` resolves UDF calls and may
/// be null when the expression contains none.
Result<Value> EvalExpr(const Expr& expr, const Tuple& tuple,
                       const UdfRegistry* registry);

/// Evaluates as a predicate: NULL and non-boolean-falsy results are false.
Result<bool> EvalPredicate(const Expr& expr, const Tuple& tuple,
                           const UdfRegistry* registry);

/// Infers the result type given the input schema (for plan typechecking).
Result<ValueType> InferType(const Expr& expr, const Schema& schema,
                            const UdfRegistry* registry);

}  // namespace rex

#endif  // REX_EXEC_EXPR_H_
