// TupleSet: the bucket abstraction passed to delta handlers (§3.3).
//
// Join-state and while-state handlers receive TUPLESET arguments — the
// bucket of tuples for a key (join) or the whole fixpoint relation slice.
// Handlers mutate buckets in place (prBucket.put(...) in the paper's
// PRAgg). For the common key->value layout (field 0 = key) the get/put
// convenience accessors mirror the paper's pseudo-Java API.
#ifndef REX_EXEC_TUPLE_SET_H_
#define REX_EXEC_TUPLE_SET_H_

#include <optional>
#include <vector>

#include "common/tuple.h"

namespace rex {

class TupleSet {
 public:
  TupleSet() = default;
  explicit TupleSet(std::vector<Tuple> tuples) : tuples_(std::move(tuples)) {}

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const Tuple& at(size_t i) const { return tuples_[i]; }
  Tuple& at(size_t i) { return tuples_[i]; }

  std::vector<Tuple>& tuples() { return tuples_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  void Add(Tuple t) { tuples_.push_back(std::move(t)); }

  /// Removes the first tuple equal to `t`; returns whether one was found.
  bool Remove(const Tuple& t);

  /// Replaces the first tuple equal to `old_t` with `new_t`. Strict: a
  /// miss leaves the set untouched and returns false (it used to append —
  /// callers that want upsert semantics must say so via ReplaceOrInsert).
  bool Replace(const Tuple& old_t, Tuple new_t);

  /// Upsert form of Replace: appends `new_t` when `old_t` is absent.
  /// Returns whether an existing tuple was replaced (false = appended).
  bool ReplaceOrInsert(const Tuple& old_t, Tuple new_t);

  // -- key->value convenience layer (field `key_field` is the key) --------

  /// First tuple whose `key_field` equals `key`, or nullptr. A negative
  /// field index aborts (it used to wrap through size_t and silently miss).
  const Tuple* Find(const Value& key, int key_field = 0) const;
  Tuple* Find(const Value& key, int key_field = 0);

  /// Value of field `value_field` for `key`, if present. Negative field
  /// indexes abort, as in Find.
  std::optional<Value> Get(const Value& key, int value_field = 1,
                           int key_field = 0) const;

  /// Upserts (key, value) as a two-field tuple; returns the previous value
  /// if the key existed.
  std::optional<Value> Put(const Value& key, Value value);

  auto begin() { return tuples_.begin(); }
  auto end() { return tuples_.end(); }
  auto begin() const { return tuples_.begin(); }
  auto end() const { return tuples_.end(); }

 private:
  std::vector<Tuple> tuples_;
};

}  // namespace rex

#endif  // REX_EXEC_TUPLE_SET_H_
