#include "exec/udf_registry.h"

namespace rex {

namespace {

template <typename T>
Status RegisterInto(std::map<std::string, std::shared_ptr<T>>* into, T def,
                    const char* kind) {
  if (def.name.empty()) {
    return Status::InvalidArgument(std::string(kind) + " with empty name");
  }
  // Copy the key first: evaluation order of emplace arguments is
  // unspecified, and std::move(def) may gut def.name before it is read.
  std::string name = def.name;
  auto [it, inserted] =
      into->emplace(std::move(name), std::make_shared<T>(std::move(def)));
  if (!inserted) {
    return Status::AlreadyExists(std::string(kind) + " '" + it->first +
                                 "' already registered");
  }
  return Status::OK();
}

template <typename T>
Result<const T*> LookupIn(const std::map<std::string, std::shared_ptr<T>>& in,
                          const std::string& name, const char* kind) {
  auto it = in.find(name);
  if (it == in.end()) {
    return Status::NotFound(std::string("no ") + kind + " named '" + name +
                            "'");
  }
  return static_cast<const T*>(it->second.get());
}

}  // namespace

Status UdfRegistry::RegisterScalar(ScalarUdf udf) {
  std::lock_guard<std::mutex> lock(mutex_);
  return RegisterInto(&scalars_, std::move(udf), "scalar UDF");
}

Status UdfRegistry::RegisterTable(TableUdf udf) {
  std::lock_guard<std::mutex> lock(mutex_);
  return RegisterInto(&tables_, std::move(udf), "table UDF");
}

Status UdfRegistry::RegisterUda(Uda uda) {
  std::lock_guard<std::mutex> lock(mutex_);
  return RegisterInto(&udas_, std::move(uda), "UDA");
}

Status UdfRegistry::RegisterJoinHandler(JoinHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  return RegisterInto(&join_handlers_, std::move(handler), "join handler");
}

Status UdfRegistry::RegisterWhileHandler(WhileHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  return RegisterInto(&while_handlers_, std::move(handler), "while handler");
}

Result<const ScalarUdf*> UdfRegistry::GetScalar(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return LookupIn(scalars_, name, "scalar UDF");
}

Result<const TableUdf*> UdfRegistry::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return LookupIn(tables_, name, "table UDF");
}

Result<const Uda*> UdfRegistry::GetUda(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return LookupIn(udas_, name, "UDA");
}

Result<const JoinHandler*> UdfRegistry::GetJoinHandler(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return LookupIn(join_handlers_, name, "join handler");
}

Result<const WhileHandler*> UdfRegistry::GetWhileHandler(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return LookupIn(while_handlers_, name, "while handler");
}

}  // namespace rex
