// Delta-aware grouped aggregation (§3.3).
//
// State is a map from grouping key to per-aggregate intermediate state.
// Built-in aggregates (sum/count/min/max/avg) handle insert, delete, and
// replace deltas automatically; a UDA's agg_state handler is consulted for
// everything else (and may emit streamed partial results immediately —
// §4.2). At stratum end the operator emits each touched group's results:
//
//  - kStratum mode: groups aggregate the current stratum's deltas only and
//    the state resets afterwards (per-iteration aggregation inside a
//    recursive plan, e.g. summing PageRank diffs).
//  - kPersistent mode: state lives across punctuation waves and changed
//    groups emit replacement deltas (incremental view maintenance
//    semantics; also the OLAP case, where there is a single wave).
#ifndef REX_EXEC_GROUP_BY_H_
#define REX_EXEC_GROUP_BY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/delta_batch.h"
#include "common/flat_map.h"

#include "exec/aggregates.h"
#include "exec/coalesce.h"
#include "exec/operator.h"
#include "exec/uda.h"

namespace rex {

class GroupByOp : public Operator {
 public:
  /// One built-in aggregate column.
  struct AggSpec {
    AggKind kind = AggKind::kSum;
    /// Input field index; -1 means count(*) (any-value input).
    int input_field = -1;
    std::string output_name;
  };

  enum class Mode { kStratum, kPersistent };

  struct Params {
    std::vector<int> key_fields;
    /// Built-in aggregates. Output layout: key fields then one result per
    /// aggregate. Mutually exclusive with `uda`.
    std::vector<AggSpec> aggs;
    /// User-defined aggregator by registry name; the UDA's handlers own
    /// the output layout.
    std::string uda;
    /// Fields of the input tuple passed to the UDA (the UDA's argument
    /// list, e.g. ArgMin(srcId, dist)). Empty = the whole tuple.
    std::vector<int> uda_input_fields;
    /// UDA mode: prepend the group's key fields to each emitted tuple
    /// (ArgMin-style usage: SELECT nbr, ArgMin(...) GROUP BY nbr).
    bool prefix_group_key = false;
    Mode mode = Mode::kStratum;
  };

  GroupByOp(int id, Params params)
      : Operator(id, 1), params_(std::move(params)) {}

  const char* name() const override { return "groupBy"; }
  Status Open(ExecContext* ctx) override;
  Status ConsumeDeltas(int port, DeltaVec deltas) override;
  Status ResetTransientState() override;

  size_t NumGroups() const;

 protected:
  Status OnAllPunct(const Punctuation& p) override;

 private:
  struct Group {
    std::vector<Value> key;
    std::vector<std::unique_ptr<AggState>> agg_states;
    std::unique_ptr<UdaState> uda_state;
    bool touched = false;
    bool has_emitted = false;
    Tuple last_emitted;
  };

  Group* FindOrCreate(const std::vector<Value>& key);
  /// Allocation-free lookup on the hot path (key vector only materializes
  /// when a group is created).
  Group* FindOrCreateFromTuple(const Tuple& t);
  /// Columnar twin of FindOrCreateFromTuple: `h` is the row's precomputed
  /// seeded key hash; matching compares cells against stored keys without
  /// boxing.
  Group* FindOrCreateFromBatch(const DeltaBatch& batch, size_t row,
                               uint64_t h);
  /// Vectorized built-in fold: converts the batch once, hashes key columns
  /// column-at-a-time, and folds each row into its group through the typed
  /// ApplyWeightedInt/Double fast paths. Returns false (after counting the
  /// fallback) when the stream is outside the columnar domain.
  Result<bool> ConsumeColumnar(const DeltaVec& deltas);
  std::vector<Value> KeyOf(const Tuple& t) const;
  Status ApplyBuiltin(Group* g, DeltaOp op, const Tuple& t,
                      const Tuple& old_t, int64_t weight = 1);
  Result<Tuple> CurrentResult(const Group& g) const;
  bool GroupEmpty(const Group& g) const;

  Params params_;
  const Uda* uda_ = nullptr;
  FlatMap64<std::vector<Group>> groups_;

  /// Engaged when EngineConfig::coalesce_deltas is on: punctuation-time
  /// emission is folded to its net effect (built-in output is keyed on the
  /// leading group-key columns; UDA output, whose layout the UDA owns, is
  /// keyed on the whole tuple, so only exact-pair annihilation can fire).
  std::optional<DeltaCoalescer> coalescer_;
  Counter* deltas_coalesced_ = nullptr;
  Counter* coalesce_bytes_saved_ = nullptr;

  /// Columnar plane (built-in aggregates only; UDAs own their layout and
  /// always take the scalar path).
  bool columnar_ = false;
  Counter* batch_rows_ = nullptr;
  Counter* batch_batches_ = nullptr;
  Counter* batch_fallback_rows_ = nullptr;
};

}  // namespace rex

#endif  // REX_EXEC_GROUP_BY_H_
