#include "exec/operator.h"

#include <chrono>

#include "common/logging.h"

namespace rex {

Operator::Operator(int id, int num_ports)
    : id_(id),
      expected_puncts_(static_cast<size_t>(num_ports), 1),
      received_puncts_(static_cast<size_t>(num_ports), 0),
      port_complete_(static_cast<size_t>(num_ports), false),
      port_closed_(static_cast<size_t>(num_ports), false),
      port_stats_(static_cast<size_t>(num_ports)) {}

void Operator::AddOutput(Operator* op, int port) {
  outputs_.push_back(Output{op, port});
}

void Operator::SetExpectedPuncts(int port, int count) {
  expected_puncts_[static_cast<size_t>(port)] = count;
}

Status Operator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  tuples_processed_ = ctx->metrics->GetCounter(metrics::kTuplesProcessed);
  profile_timing_ =
      ctx->config != nullptr && ctx->config->profile_operators;
  return Status::OK();
}

Status Operator::Consume(int port, DeltaVec deltas) {
  auto idx = static_cast<size_t>(port);
  if (idx >= port_stats_.size()) {
    // Let the operator's own hook produce its error (sources reject every
    // Consume with their own message; real bad-port sends are caught by
    // WorkerNode::Dispatch before reaching us).
    return ConsumeDeltas(port, std::move(deltas));
  }
  OperatorPortStats& stats = port_stats_[idx];
  stats.batches += 1;
  stats.tuples += static_cast<int64_t>(deltas.size());
  if (!profile_timing_) return ConsumeDeltas(port, std::move(deltas));
  const auto start = std::chrono::steady_clock::now();
  Status status = ConsumeDeltas(port, std::move(deltas));
  stats.consume_nanos += std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  return status;
}

Status Operator::StartStratum(int) { return Status::OK(); }

Status Operator::Close() { return Status::OK(); }

Status Operator::ResetTransientState() {
  // Keep port_closed_: stream-once inputs stay delivered across recovery.
  for (size_t i = 0; i < received_puncts_.size(); ++i) {
    received_puncts_[i] = 0;
    port_complete_[i] = false;
  }
  any_punct_this_wave_ = false;
  return Status::OK();
}

Status Operator::Emit(DeltaVec deltas) {
  if (deltas.empty() || outputs_.empty()) return Status::OK();
  deltas_emitted_ += static_cast<int64_t>(deltas.size());
  for (size_t i = 0; i + 1 < outputs_.size(); ++i) {
    DeltaVec copy = deltas;
    REX_RETURN_NOT_OK(outputs_[i].op->Consume(outputs_[i].port,
                                              std::move(copy)));
  }
  return outputs_.back().op->Consume(outputs_.back().port,
                                     std::move(deltas));
}

Status Operator::EmitPunct(const Punctuation& p) {
  for (const Output& out : outputs_) {
    REX_RETURN_NOT_OK(out.op->OnPunct(out.port, p));
  }
  return Status::OK();
}

Status Operator::OnPunct(int port, const Punctuation& p) {
  auto idx = static_cast<size_t>(port);
  if (idx >= received_puncts_.size()) {
    return Status::OutOfRange(std::string(name()) + " op " +
                              std::to_string(id_) + ": punct on bad port " +
                              std::to_string(port));
  }
  port_stats_[idx].puncts += 1;
  any_punct_this_wave_ = true;
  received_puncts_[idx] += 1;
  const bool wave_done = received_puncts_[idx] >= expected_puncts_[idx];
  if (!wave_done) return Status::OK();
  port_complete_[idx] = true;
  if (p.kind == Punctuation::Kind::kEndOfStream) port_closed_[idx] = true;
  return OnPortWaveComplete(port, p);
}

bool Operator::AllPortsClosed() const {
  if (port_closed_.empty()) return false;  // sources handled by their kind
  for (bool closed : port_closed_) {
    if (!closed) return false;
  }
  return true;
}

void Operator::MarkPortDelivered(int port) {
  auto idx = static_cast<size_t>(port);
  received_puncts_[idx] = expected_puncts_[idx];
  port_complete_[idx] = true;
  port_closed_[idx] = true;
}

bool Operator::AllOpenPortsComplete() const {
  for (size_t i = 0; i < port_complete_.size(); ++i) {
    if (port_closed_[i]) continue;  // closed ports never block firing
    if (!port_complete_[i]) return false;
  }
  return true;
}

void Operator::ResetWave() {
  for (size_t i = 0; i < received_puncts_.size(); ++i) {
    if (port_closed_[i]) continue;
    received_puncts_[i] = 0;
    port_complete_[i] = false;
  }
  any_punct_this_wave_ = false;
}

Status Operator::OnPortWaveComplete(int /*port*/, const Punctuation& p) {
  if (!any_punct_this_wave_ || !AllOpenPortsComplete()) return Status::OK();
  REX_RETURN_NOT_OK(OnAllPunct(p));
  ResetWave();
  return EmitPunct(p);
}

Status Operator::OnAllPunct(const Punctuation&) { return Status::OK(); }

Status Operator::RecoveryReload() { return Status::OK(); }

Status Operator::OnMembershipChange() { return Status::OK(); }

}  // namespace rex
