// The while / fixpoint operator (§3.2, §4.2): governs recursion.
//
// Dual function: (1) maintains the recursive relation — deduplicating by
// the query-specified key, applying replacements, or delegating to a
// user while-state delta handler; (2) feeds each stratum's Δ set back into
// the recursive sub-plan when the driver advances the stratum.
//
// At the end of a stratum the fixpoint does NOT forward punctuation around
// the recursive loop; it votes: it reports the number of newly derived
// tuples (and change statistics, for explicit termination conditions) to
// the query requestor, and — when incremental recovery is enabled —
// replicates its Δᵢ set to the replica workers of each tuple's range
// (§4.3).
//
// Modes:
//   kDelta      REX delta: only changed tuples flow to the next stratum.
//   kFull       REX no-delta: the entire mutable set is re-emitted every
//               stratum (what Hadoop/HaLoop-style systems recompute).
//   kAccumulate recursive-SQL semantics (the "DBMS X" baseline): state
//               accumulates and is never updated in place; each stratum
//               propagates the newly derived tuples, and all versions are
//               retained.
#ifndef REX_EXEC_FIXPOINT_H_
#define REX_EXEC_FIXPOINT_H_

#include <optional>
#include <string>
#include <vector>

#include "common/flat_map.h"

#include "exec/coalesce.h"
#include "exec/operator.h"
#include "exec/tuple_set.h"
#include "exec/uda.h"

namespace rex {

class FixpointOp : public Operator {
 public:
  enum class Mode { kDelta, kFull, kAccumulate };

  struct Params {
    /// "UNION UNTIL FIXPOINT BY <key>": fields identifying a state tuple.
    std::vector<int> key_fields;
    /// Fields the loop's rehash routes on (checkpoint range ownership must
    /// match routing). Empty = same as key_fields. Differs when state is
    /// keyed finer than it is partitioned (e.g. adsorption: keyed by
    /// (vertex, label), partitioned by vertex).
    std::vector<int> partition_fields;
    /// Optional while-state delta handler (registry name). The handler
    /// receives the bucket of state tuples for the delta's key.
    std::string while_handler;
    Mode mode = Mode::kDelta;
    /// Field whose numeric change is tracked for explicit termination
    /// conditions and thresholding; -1 disables.
    int value_field = -1;
    /// Minimum |change| of value_field for a replacement to count as new
    /// (and be propagated in kDelta mode). 0 = exact set semantics.
    double change_threshold = 0.0;
    /// Additional relative component: a change only counts when
    /// |new - old| > change_threshold + relative_threshold * |old| (the
    /// paper's "changed by more than 1%" convergence criterion).
    double relative_threshold = 0.0;
  };

  FixpointOp(int id, Params params)
      : Operator(id, 2), params_(std::move(params)) {}

  static constexpr int kBasePort = 0;
  static constexpr int kRecursivePort = 1;

  const char* name() const override { return "fixpoint"; }
  Status Open(ExecContext* ctx) override;
  Status ConsumeDeltas(int port, DeltaVec deltas) override;
  /// Flushes the pending Δ set (or the full state, per mode) into the
  /// recursive sub-plan and punctuates the new stratum's wave.
  Status StartStratum(int stratum) override;
  Status ResetTransientState() override;

  /// Final results: the fixpoint's state relation (the driver unions these
  /// across workers at end of query).
  std::vector<Tuple> StateTuples() const;
  size_t StateSize() const;
  size_t PendingSize() const { return pending_.size(); }

  /// Fields checkpoint routing and ownership filtering use (partition
  /// fields when set, key fields otherwise). The driver routes base-update
  /// seeds with the same hash so they land where the loop's rehash would
  /// have delivered them.
  const std::vector<int>& RouteFields() const {
    return params_.partition_fields.empty() ? params_.key_fields
                                            : params_.partition_fields;
  }

  /// Incremental recovery (§4.3): rebuilds state by replaying the
  /// checkpointed Δ sets of strata [0, last_stratum] that now map to this
  /// worker; the last stratum's replay output becomes the pending set so
  /// the resumed stratum flushes exactly what the lost stratum would have.
  Status RestoreFromCheckpoints(int last_stratum, bool log = true);

  /// Applies one stratum's checkpointed Δ set (filtered to keys this worker
  /// owns) on top of the current state; pending_ becomes that stratum's
  /// regenerated propagations. Guided-replay recovery interleaves these
  /// calls with loop-body re-execution to rebuild derived state elsewhere
  /// in the plan.
  Status ApplyCheckpointStratum(int stratum);

  /// Incremental view maintenance under base-table updates: applies a
  /// driver-computed perturbation Δ set against the *converged* state and
  /// checkpoints the arrivals under `checkpoint_stratum` (the converged
  /// run's final stratum, which recovery truncation preserves). The
  /// resulting pending_ set is what the next stratum flushes — the driver
  /// then re-runs the stratum loop from there instead of from scratch.
  Status SeedBaseUpdate(const DeltaVec& seeds, int checkpoint_stratum);

  /// Runtime Δ-conservation invariant (chaos harness): replaying the
  /// checkpointed Δ sets of strata [0, last_stratum] on a scratch operator
  /// must reproduce this operator's mutable state — and its pending Δ set —
  /// bit-for-bit. Returns Internal on any divergence.
  Status VerifyCheckpointConservation(int last_stratum);

 protected:
  /// Votes to the requestor instead of forwarding punctuation.
  Status OnPortWaveComplete(int port, const Punctuation& p) override;

 private:
  struct Bucket {
    std::vector<Value> key;
    TupleSet tuples;  // set semantics keep exactly one; handlers decide
  };

  std::vector<Value> KeyOf(const Tuple& t) const;
  Bucket* FindOrCreate(const std::vector<Value>& key);
  /// Allocation-free hot-path lookup.
  Bucket* FindOrCreateFromTuple(const Tuple& t);

  /// Applies one delta to state; appends propagations to pending_ and
  /// updates stats. Shared by Consume and checkpoint replay.
  Status Apply(const Delta& d);

  /// `append` extends a completed stratum's checkpoint entries instead of
  /// overwriting them (base-update seeding).
  Status CheckpointPending(int stratum, bool append = false);

  Params params_;
  const WhileHandler* handler_ = nullptr;

  FlatMap64<std::vector<Bucket>> state_;
  size_t state_size_ = 0;
  DeltaVec pending_;
  /// The stratum's checkpoint-bound Δ history: every arrival whose
  /// application mutated state, in application order (plus, for handlers
  /// that keep unpropagated state, every arrival — sub-threshold revisions
  /// are state changes too). Replaying this log reproduces both the state
  /// mutations and the propagated Δ set of the stratum bit-for-bit.
  DeltaVec applied_log_;
  /// True while Apply is fed from checkpoints: suppresses re-logging.
  bool replaying_ = false;

  /// Engaged when EngineConfig::coalesce_deltas is on in kDelta mode:
  /// StartStratum folds the pending Δ set to its net effect (a key revised
  /// five times in one stratum flushes one composed delta). Operates on the
  /// swapped flush copy only — pending_/applied_log_ and hence checkpoints
  /// and the Δ-conservation invariant stay raw.
  std::optional<DeltaCoalescer> coalescer_;
  Counter* deltas_coalesced_ = nullptr;
  Counter* coalesce_bytes_saved_ = nullptr;
  /// Rows the coalescer's columnar fold handled (exec.batch_rows).
  Counter* batch_rows_ = nullptr;

  VoteStats stats_;  // current stratum
};

}  // namespace rex

#endif  // REX_EXEC_FIXPOINT_H_
