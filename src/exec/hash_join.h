// Pipelined symmetric hash join with delta propagation (§3.2, §3.3).
//
// Each input accumulates tuples into per-key buckets and immediately probes
// the opposite side's bucket. Insertions/deletions/replacements follow the
// delta rules of Gupta-Mumick-Subrahmanian [12]; δ(E)-annotated tuples are
// handed to a user join-state delta handler together with both buckets
// (the paper's UPDATE(LEFTBUCKET, RIGHTBUCKET, DELTA)). A side may be
// declared immutable — its bucket is build-only state loaded once (and
// reloaded for taken-over ranges during incremental recovery).
#ifndef REX_EXEC_HASH_JOIN_H_
#define REX_EXEC_HASH_JOIN_H_

#include <string>
#include <vector>

#include "common/delta_batch.h"
#include "common/flat_map.h"

#include "exec/operator.h"
#include "exec/tuple_set.h"
#include "exec/uda.h"

namespace rex {

class HashJoinOp : public Operator {
 public:
  struct Params {
    std::vector<int> left_keys;   // key fields on port 0 input
    std::vector<int> right_keys;  // key fields on port 1 input
    /// Per-side immutability (index 0 = left). An immutable side only
    /// builds state; deltas never probe *from* it.
    bool immutable[2] = {false, false};
    /// Optional join-state delta handler for δ(E) deltas, resolved by
    /// name from the registry.
    std::string handler;
    /// When true, even +/-/-> deltas on a mutable side are routed through
    /// the handler (the handler owns all state transitions).
    bool handler_owns_all = false;
    /// When true, the handler mutates bucket tuples in place across strata
    /// (k-means point assignments). Plans containing such joins — or
    /// persistent group-bys — carry derived state outside the fixpoint that
    /// Δ-set restoration alone cannot rebuild; recovery must replay the
    /// checkpointed strata through the whole loop body instead.
    bool handler_keeps_state = false;
  };

  HashJoinOp(int id, Params params)
      : Operator(id, 2), params_(std::move(params)) {}

  const char* name() const override { return "hashJoin"; }
  Status Open(ExecContext* ctx) override;
  Status ConsumeDeltas(int port, DeltaVec deltas) override;

  /// Total buffered tuples (both sides; used by tests and Δ-set reports).
  size_t StateSize() const;

 private:
  struct Bucket {
    std::vector<Value> key;  // verified on probe (hash collisions)
    TupleSet side[2];
  };

  const std::vector<int>& KeysOf(int port) const {
    return port == 0 ? params_.left_keys : params_.right_keys;
  }
  std::vector<Value> KeyValues(const Tuple& t, int port) const;
  Bucket* FindOrCreate(const std::vector<Value>& key, uint64_t hash);
  Bucket* FindBucket(const std::vector<Value>& key, uint64_t hash);
  // Allocation-free hot-path lookups. The `hash` overloads take the
  // tuple's precomputed key hash (the columnar path hashes whole key
  // columns up front); the hashless forms compute it on the spot.
  uint64_t HashTupleKey(const Tuple& t, int port) const;
  bool KeyMatches(const Bucket& b, const Tuple& t, int port) const;
  Bucket* FindBucketFromTuple(const Tuple& t, int port);
  Bucket* FindBucketFromTuple(const Tuple& t, int port, uint64_t hash);
  Bucket* FindOrCreateFromTuple(const Tuple& t, int port);
  Bucket* FindOrCreateFromTuple(const Tuple& t, int port, uint64_t hash);

  /// Emits `op`-annotated concatenations of `t` with every match in the
  /// opposite bucket, each carrying `weight`. Left tuples always precede
  /// right in the output.
  Status Probe(int port, const Tuple& t, DeltaOp op, int64_t weight,
               DeltaVec* out, uint64_t hash);

  Status ApplyStandard(int port, Delta d, DeltaVec* out);
  Status ApplyStandard(int port, Delta d, DeltaVec* out, uint64_t hash);
  Status ApplyHandler(int port, const Delta& d, DeltaVec* out);
  Status ApplyHandler(int port, const Delta& d, DeltaVec* out,
                      uint64_t hash);

  Params params_;
  const JoinHandler* handler_ = nullptr;
  // Hash of key values -> bucket chain.
  FlatMap64<std::vector<Bucket>> buckets_;

  /// Columnar plane: key hashes for an in-domain batch are computed
  /// column-at-a-time before the per-row build/probe.
  bool columnar_ = false;
  Counter* batch_rows_ = nullptr;
  Counter* batch_batches_ = nullptr;
  Counter* batch_fallback_rows_ = nullptr;
};

}  // namespace rex

#endif  // REX_EXEC_HASH_JOIN_H_
