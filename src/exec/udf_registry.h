// Name -> user-defined-code registry shared by all workers of an engine.
//
// Mirrors REX's direct use of Java class files: user code is registered
// once under a name and plans reference it by name; workers resolve at
// Open() time, as the JVM resolves shipped class names.
#ifndef REX_EXEC_UDF_REGISTRY_H_
#define REX_EXEC_UDF_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "exec/uda.h"

namespace rex {

class UdfRegistry {
 public:
  Status RegisterScalar(ScalarUdf udf);
  Status RegisterTable(TableUdf udf);
  Status RegisterUda(Uda uda);
  Status RegisterJoinHandler(JoinHandler handler);
  Status RegisterWhileHandler(WhileHandler handler);

  Result<const ScalarUdf*> GetScalar(const std::string& name) const;
  Result<const TableUdf*> GetTable(const std::string& name) const;
  Result<const Uda*> GetUda(const std::string& name) const;
  Result<const JoinHandler*> GetJoinHandler(const std::string& name) const;
  Result<const WhileHandler*> GetWhileHandler(const std::string& name) const;

  bool HasScalar(const std::string& name) const {
    return GetScalar(name).ok();
  }
  bool HasUda(const std::string& name) const { return GetUda(name).ok(); }
  bool HasTable(const std::string& name) const { return GetTable(name).ok(); }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<ScalarUdf>> scalars_;
  std::map<std::string, std::shared_ptr<TableUdf>> tables_;
  std::map<std::string, std::shared_ptr<Uda>> udas_;
  std::map<std::string, std::shared_ptr<JoinHandler>> join_handlers_;
  std::map<std::string, std::shared_ptr<WhileHandler>> while_handlers_;
};

/// Registers the built-in general-purpose UDAs and UDFs that ship with the
/// engine (ArgMin, ArgMax, numeric mult functions, ...). Called by Engine.
Status RegisterBuiltins(UdfRegistry* registry);

}  // namespace rex

#endif  // REX_EXEC_UDF_REGISTRY_H_
