#include "exec/aggregates.h"

#include <algorithm>
#include <cctype>
#include <map>

namespace rex {

Result<AggKind> AggKindFromName(const std::string& name) {
  std::string lower(name.size(), '\0');
  std::transform(name.begin(), name.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "sum") return AggKind::kSum;
  if (lower == "count") return AggKind::kCount;
  if (lower == "min") return AggKind::kMin;
  if (lower == "max") return AggKind::kMax;
  if (lower == "avg" || lower == "average") return AggKind::kAvg;
  return Status::NotFound("no built-in aggregate named '" + name + "'");
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
      return "sum";
    case AggKind::kCount:
      return "count";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kAvg:
      return "avg";
  }
  return "?";
}

Status AggFunction::ApplyWeighted(AggState* state, const Value& v,
                                  int64_t w) const {
  for (int64_t i = 0; i < w; ++i) REX_RETURN_NOT_OK(Insert(state, v));
  for (int64_t i = 0; i > w; --i) REX_RETURN_NOT_OK(Delete(state, v));
  return Status::OK();
}

namespace {

// ℤ-set multiplicities are attacker/workload-controlled int64s; every
// accumulator fold goes through checked arithmetic so hostile weights
// surface as InvalidArgument instead of signed-overflow UB.
Status CheckedCountAdd(int64_t* count, int64_t w, const char* agg) {
  int64_t sum = 0;
  if (__builtin_add_overflow(*count, w, &sum)) {
    return Status::InvalidArgument(std::string(agg) +
                                   "() multiplicity overflow: count " +
                                   std::to_string(*count) + " + weight " +
                                   std::to_string(w) + " leaves int64 range");
  }
  *count = sum;
  return Status::OK();
}

struct SumState : AggState {
  double sum = 0;
  int64_t int_sum = 0;
  bool all_int = true;
  int64_t count = 0;
};

class SumFunction : public AggFunction {
 public:
  std::unique_ptr<AggState> NewState() const override {
    return std::make_unique<SumState>();
  }
  Status Insert(AggState* state, const Value& v) const override {
    return Apply(state, v, +1);
  }
  Status Delete(AggState* state, const Value& v) const override {
    return Apply(state, v, -1);
  }
  Status ApplyWeighted(AggState* state, const Value& v,
                       int64_t w) const override {
    return Apply(state, v, w);
  }
  Status ApplyWeightedInt(AggState* state, int64_t v,
                          int64_t w) const override {
    auto* s = static_cast<SumState*>(state);
    int64_t contribution = 0;
    int64_t next = 0;
    if (__builtin_mul_overflow(w, v, &contribution) ||
        __builtin_add_overflow(s->int_sum, contribution, &next)) {
      return Status::InvalidArgument(
          "sum() overflow: " + std::to_string(s->int_sum) + " + " +
          std::to_string(w) + "×" + Value(v).ToString() +
          " leaves int64 range");
    }
    s->int_sum = next;
    s->sum += static_cast<double>(w) * static_cast<double>(v);
    return CheckedCountAdd(&s->count, w, "sum");
  }
  Status ApplyWeightedDouble(AggState* state, double v,
                             int64_t w) const override {
    auto* s = static_cast<SumState*>(state);
    s->all_int = false;
    s->sum += static_cast<double>(w) * v;
    return CheckedCountAdd(&s->count, w, "sum");
  }
  bool IsLinear() const override { return true; }
  Result<Value> Current(const AggState* state) const override {
    const auto* s = static_cast<const SumState*>(state);
    if (s->count == 0) return Value::Null();
    if (s->all_int) return Value(s->int_sum);
    return Value(s->sum);
  }
  int64_t Count(const AggState* state) const override {
    return static_cast<const SumState*>(state)->count;
  }
  ValueType ResultType(ValueType input_type) const override {
    return input_type == ValueType::kInt ? ValueType::kInt
                                         : ValueType::kDouble;
  }

 private:
  static Status Apply(AggState* state, const Value& v, int64_t weight) {
    auto* s = static_cast<SumState*>(state);
    if (v.is_null()) return Status::OK();  // SQL semantics: ignore NULLs
    REX_ASSIGN_OR_RETURN(double d, v.ToDouble());
    if (v.type() == ValueType::kInt) {
      int64_t contribution = 0;
      int64_t next = 0;
      if (__builtin_mul_overflow(weight, v.AsInt(), &contribution) ||
          __builtin_add_overflow(s->int_sum, contribution, &next)) {
        return Status::InvalidArgument(
            "sum() overflow: " + std::to_string(s->int_sum) + " + " +
            std::to_string(weight) + "×" + v.ToString() +
            " leaves int64 range");
      }
      s->int_sum = next;
    } else {
      s->all_int = false;
    }
    s->sum += static_cast<double>(weight) * d;
    REX_RETURN_NOT_OK(CheckedCountAdd(&s->count, weight, "sum"));
    return Status::OK();
  }
};

struct CountState : AggState {
  int64_t count = 0;
};

class CountFunction : public AggFunction {
 public:
  std::unique_ptr<AggState> NewState() const override {
    return std::make_unique<CountState>();
  }
  Status Insert(AggState* state, const Value&) const override {
    static_cast<CountState*>(state)->count += 1;
    return Status::OK();
  }
  Status Delete(AggState* state, const Value&) const override {
    static_cast<CountState*>(state)->count -= 1;
    return Status::OK();
  }
  Status ApplyWeighted(AggState* state, const Value&,
                       int64_t w) const override {
    return CheckedCountAdd(&static_cast<CountState*>(state)->count, w,
                           "count");
  }
  Status ApplyWeightedInt(AggState* state, int64_t,
                          int64_t w) const override {
    return CheckedCountAdd(&static_cast<CountState*>(state)->count, w,
                           "count");
  }
  Status ApplyWeightedDouble(AggState* state, double,
                             int64_t w) const override {
    return CheckedCountAdd(&static_cast<CountState*>(state)->count, w,
                           "count");
  }
  bool IsLinear() const override { return true; }
  Result<Value> Current(const AggState* state) const override {
    return Value(static_cast<const CountState*>(state)->count);
  }
  int64_t Count(const AggState* state) const override {
    return static_cast<const CountState*>(state)->count;
  }
  ValueType ResultType(ValueType) const override { return ValueType::kInt; }
};

/// Mirrors SumState's exact integer fast path: a pure-int input stream
/// accumulates in `int_sum` (overflow-checked) and only converts to double
/// at finalize. Accumulating in `sum` alone drifts once the running total
/// leaves ±2^53 — long insert/retract churn under weighted ℤ-set updates
/// then returns an average off by the accumulated rounding error even
/// after most inputs retract.
struct AvgState : AggState {
  double sum = 0;
  int64_t int_sum = 0;
  bool all_int = true;
  int64_t count = 0;
};

class AvgFunction : public AggFunction {
 public:
  std::unique_ptr<AggState> NewState() const override {
    return std::make_unique<AvgState>();
  }
  Status Insert(AggState* state, const Value& v) const override {
    return Apply(state, v, +1);
  }
  Status Delete(AggState* state, const Value& v) const override {
    return Apply(state, v, -1);
  }
  Status ApplyWeighted(AggState* state, const Value& v,
                       int64_t w) const override {
    return Apply(state, v, w);
  }
  Status ApplyWeightedInt(AggState* state, int64_t v,
                          int64_t w) const override {
    return ApplyInt(state, v, w);
  }
  Status ApplyWeightedDouble(AggState* state, double v,
                             int64_t w) const override {
    auto* s = static_cast<AvgState*>(state);
    s->all_int = false;
    s->sum += static_cast<double>(w) * v;
    return CheckedCountAdd(&s->count, w, "avg");
  }
  bool IsLinear() const override { return true; }
  Result<Value> Current(const AggState* state) const override {
    const auto* s = static_cast<const AvgState*>(state);
    if (s->count == 0) return Value::Null();
    if (s->all_int) {
      // Exact until finalize: one rounding at the division, none on the
      // accumulation.
      return Value(static_cast<double>(s->int_sum) /
                   static_cast<double>(s->count));
    }
    return Value(s->sum / static_cast<double>(s->count));
  }
  int64_t Count(const AggState* state) const override {
    return static_cast<const AvgState*>(state)->count;
  }
  ValueType ResultType(ValueType) const override {
    return ValueType::kDouble;
  }

 private:
  static Status ApplyInt(AggState* state, int64_t v, int64_t weight) {
    auto* s = static_cast<AvgState*>(state);
    int64_t contribution = 0;
    int64_t next = 0;
    if (__builtin_mul_overflow(weight, v, &contribution) ||
        __builtin_add_overflow(s->int_sum, contribution, &next)) {
      return Status::InvalidArgument(
          "avg() overflow: " + std::to_string(s->int_sum) + " + " +
          std::to_string(weight) + "×" + Value(v).ToString() +
          " leaves int64 range");
    }
    s->int_sum = next;
    s->sum += static_cast<double>(weight) * static_cast<double>(v);
    return CheckedCountAdd(&s->count, weight, "avg");
  }

  static Status Apply(AggState* state, const Value& v, int64_t weight) {
    auto* s = static_cast<AvgState*>(state);
    if (v.is_null()) return Status::OK();
    if (v.type() == ValueType::kInt) return ApplyInt(state, v.AsInt(), weight);
    REX_ASSIGN_OR_RETURN(double d, v.ToDouble());
    s->all_int = false;
    s->sum += static_cast<double>(weight) * d;
    return CheckedCountAdd(&s->count, weight, "avg");
  }
};

/// min/max buffer all values: deleting the current extremum must surface
/// the next one (§3.3).
struct MinMaxState : AggState {
  std::multiset<Value> values;
};

class MinMaxFunction : public AggFunction {
 public:
  explicit MinMaxFunction(bool is_min) : is_min_(is_min) {}

  std::unique_ptr<AggState> NewState() const override {
    return std::make_unique<MinMaxState>();
  }
  Status Insert(AggState* state, const Value& v) const override {
    if (!v.is_null()) static_cast<MinMaxState*>(state)->values.insert(v);
    return Status::OK();
  }
  Status Delete(AggState* state, const Value& v) const override {
    if (v.is_null()) return Status::OK();
    auto* s = static_cast<MinMaxState*>(state);
    auto it = s->values.find(v);
    if (it == s->values.end()) {
      return Status::NotFound("delete of value not in min/max state: " +
                              v.ToString());
    }
    s->values.erase(it);
    return Status::OK();
  }
  Result<Value> Current(const AggState* state) const override {
    const auto* s = static_cast<const MinMaxState*>(state);
    if (s->values.empty()) return Value::Null();
    return is_min_ ? *s->values.begin() : *s->values.rbegin();
  }
  int64_t Count(const AggState* state) const override {
    return static_cast<int64_t>(
        static_cast<const MinMaxState*>(state)->values.size());
  }
  ValueType ResultType(ValueType input_type) const override {
    return input_type;
  }

 private:
  bool is_min_;
};

}  // namespace

const AggFunction* GetAggFunction(AggKind kind) {
  static const SumFunction kSum;
  static const CountFunction kCount;
  static const AvgFunction kAvg;
  static const MinMaxFunction kMin(true);
  static const MinMaxFunction kMax(false);
  switch (kind) {
    case AggKind::kSum:
      return &kSum;
    case AggKind::kCount:
      return &kCount;
    case AggKind::kAvg:
      return &kAvg;
    case AggKind::kMin:
      return &kMin;
    case AggKind::kMax:
      return &kMax;
  }
  return &kSum;
}

PreAggSpec GetPreAggSpec(AggKind kind) {
  PreAggSpec spec;
  spec.available = true;
  switch (kind) {
    case AggKind::kSum:
      spec.partial = AggKind::kSum;
      spec.merge = AggKind::kSum;
      break;
    case AggKind::kCount:
      spec.partial = AggKind::kCount;
      spec.merge = AggKind::kSum;
      break;
    case AggKind::kMin:
      spec.partial = AggKind::kMin;
      spec.merge = AggKind::kMin;
      break;
    case AggKind::kMax:
      spec.partial = AggKind::kMax;
      spec.merge = AggKind::kMax;
      break;
    case AggKind::kAvg:
      spec.partial = AggKind::kSum;
      spec.merge = AggKind::kSum;
      spec.needs_count_companion = true;
      break;
  }
  return spec;
}

bool IsMultiplicitySensitive(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
    case AggKind::kCount:
    case AggKind::kAvg:
      return true;
    case AggKind::kMin:
    case AggKind::kMax:
      return false;
  }
  return true;
}

}  // namespace rex
