// Built-in general-purpose user-defined code that ships with the engine:
// the ArgMin/ArgMax UDAs referenced by the paper's shortest-path query, and
// a handful of scalar math functions available to RQL.
#include <cmath>
#include <set>

#include "exec/udf_registry.h"

namespace rex {

namespace {

/// (value, id) pairs ordered by value; supports deletion (buffered state,
/// like built-in min/max).
struct ArgExtremeState : UdaState {
  std::multiset<std::pair<Value, Value>> entries;
};

Uda MakeArgExtreme(const std::string& name, bool is_min) {
  Uda uda;
  uda.name = name;
  uda.in_schema = Schema{{"id", ValueType::kInt}, {"val", ValueType::kDouble}};
  uda.out_schema =
      Schema{{"id", ValueType::kInt}, {"val", ValueType::kDouble}};
  uda.init = [] { return std::make_unique<ArgExtremeState>(); };
  uda.agg_state = [](UdaState* state, const Delta& d) -> Result<DeltaVec> {
    auto* s = static_cast<ArgExtremeState*>(state);
    if (d.tuple.size() < 2) {
      return Status::InvalidArgument("ArgMin/ArgMax expect (id, value)");
    }
    std::pair<Value, Value> entry{d.tuple.field(1), d.tuple.field(0)};
    switch (d.op) {
      case DeltaOp::kInsert:
      case DeltaOp::kUpdate:
        s->entries.insert(std::move(entry));
        break;
      case DeltaOp::kDelete: {
        auto it = s->entries.find(entry);
        if (it != s->entries.end()) s->entries.erase(it);
        break;
      }
      case DeltaOp::kReplace: {
        std::pair<Value, Value> old_entry{d.old_tuple.field(1),
                                          d.old_tuple.field(0)};
        auto it = s->entries.find(old_entry);
        if (it != s->entries.end()) s->entries.erase(it);
        s->entries.insert(std::move(entry));
        break;
      }
      case DeltaOp::kBatch:
        // Wire-only packing; the receiving rehash expands it.
        return Status::Internal("packed batch delta reached a UDA");
    }
    return DeltaVec{};
  };
  uda.agg_result = [is_min](UdaState* state) -> Result<DeltaVec> {
    auto* s = static_cast<ArgExtremeState*>(state);
    if (s->entries.empty()) return DeltaVec{};
    const auto& best = is_min ? *s->entries.begin() : *s->entries.rbegin();
    return DeltaVec{Delta::Insert(Tuple{best.second, best.first})};
  };
  uda.composable = false;  // argmin of argmins IS valid; but the id makes
                           // multiply-compensation meaningless
  uda.cost_per_tuple = 1.0;
  return uda;
}

Status RegisterMathScalars(UdfRegistry* registry) {
  ScalarUdf absf;
  absf.name = "abs";
  absf.in_types = {ValueType::kDouble};
  absf.out_type = ValueType::kDouble;
  absf.fn = [](const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) return Status::InvalidArgument("abs(x)");
    REX_ASSIGN_OR_RETURN(double x, args[0].ToDouble());
    return Value(std::fabs(x));
  };
  REX_RETURN_NOT_OK(registry->RegisterScalar(std::move(absf)));

  ScalarUdf sqrtf_;
  sqrtf_.name = "sqrt";
  sqrtf_.in_types = {ValueType::kDouble};
  sqrtf_.out_type = ValueType::kDouble;
  sqrtf_.fn = [](const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) return Status::InvalidArgument("sqrt(x)");
    REX_ASSIGN_OR_RETURN(double x, args[0].ToDouble());
    if (x < 0) return Status::InvalidArgument("sqrt of negative value");
    return Value(std::sqrt(x));
  };
  REX_RETURN_NOT_OK(registry->RegisterScalar(std::move(sqrtf_)));

  // The built-in numeric multiply function for multiplicative-join
  // pre-aggregation compensation (§5.2): value * cardinality.
  ScalarUdf mult;
  mult.name = "numeric_mult";
  mult.in_types = {ValueType::kDouble, ValueType::kInt};
  mult.out_type = ValueType::kDouble;
  mult.fn = [](const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 2) {
      return Status::InvalidArgument("numeric_mult(value, count)");
    }
    REX_ASSIGN_OR_RETURN(double v, args[0].ToDouble());
    REX_ASSIGN_OR_RETURN(int64_t n, args[1].ToInt());
    return Value(v * static_cast<double>(n));
  };
  return registry->RegisterScalar(std::move(mult));
}

}  // namespace

Status RegisterBuiltins(UdfRegistry* registry) {
  REX_RETURN_NOT_OK(registry->RegisterUda(MakeArgExtreme("ArgMin", true)));
  REX_RETURN_NOT_OK(registry->RegisterUda(MakeArgExtreme("ArgMax", false)));
  return RegisterMathScalars(registry);
}

}  // namespace rex
