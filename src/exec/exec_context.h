// Per-worker execution context handed to every operator at Open().
#ifndef REX_EXEC_EXEC_CONTEXT_H_
#define REX_EXEC_EXEC_CONTEXT_H_

#include <cstdint>

#include "cluster/partition_map.h"
#include "cluster/vote_board.h"
#include "common/metrics.h"
#include "exec/udf_registry.h"
#include "net/network.h"
#include "storage/checkpoint_store.h"
#include "storage/table.h"

namespace rex {

/// Engine-wide knobs. Defaults reflect REX's evaluated configuration.
struct EngineConfig {
  int num_workers = 4;
  /// Total copies of each datum / checkpoint entry (paper: 3).
  int replication = 3;
  int vnodes_per_worker = 16;

  /// Deltas per network message; REX passes batched messages (§4.1).
  size_t network_batch_size = 1024;

  /// Coalesce delta streams to their net effect before they are shuffled
  /// (RehashOp flush) or re-injected into the loop (FixpointOp stratum
  /// flush, GroupByOp emission): +t/-t annihilation, ->-chain composition,
  /// plan-declared idempotent dedupe, and same-key run packing on the
  /// wire. Off reproduces the raw per-revision delta stream (the no-delta
  /// baselines and the Figure 3/12 "raw" series).
  bool coalesce_deltas = true;

  /// Columnar delta batches: hot operators (filter, rehash, group-by,
  /// hash-join, the coalescer) convert each DeltaVec to a schema-typed
  /// DeltaBatch at the edge and run vectorized column-at-a-time kernels
  /// when the stream fits the null-free fast-path domain; anything else
  /// silently takes the scalar path. Results are bit-identical either way
  /// — this knob only exists for the ablation benches and as a kill
  /// switch.
  bool columnar_batches = true;

  /// UDC input batching (§4.2): table-UDF invocations take sequences of
  /// tuples, amortizing invocation overhead. 1 disables batching.
  size_t udf_batch_size = 64;
  /// Emulated per-invocation overhead of the reflection call, in "work
  /// units" of busy CPU; lets the batching ablation show the effect.
  int udf_invoke_overhead = 0;

  /// Cache results of deterministic functions (§5.1).
  bool cache_deterministic_udfs = true;

  /// Memory budget per stateful operator before spilling (0 = always
  /// spill; large default = never in tests).
  size_t operator_memory_budget = 256u << 20;

  /// Replicate fixpoint Δ sets each stratum (incremental recovery, §4.3).
  bool checkpoint_deltas = true;

  /// Differential compression (common/delta_codec.h) on the two big byte
  /// paths. `diff_checkpoints` stores each (fixpoint, stratum, owner)
  /// checkpoint epoch as a binary delta against the owner's previous
  /// epoch; `diff_wire_runs` delta-encodes large coalesced rehash runs
  /// against the previous run shipped on the same (sender, receiver)
  /// edge. Both keep a byte-profitability gate (never store/ship a delta
  /// bigger than the raw payload) and are bit-identical to the raw paths;
  /// the knobs exist as kill switches and for the ablation benches.
  bool diff_checkpoints = true;
  bool diff_wire_runs = true;
  /// Force a self-contained keyframe every N epochs on a checkpoint chain
  /// (bounds reconstruction work and the blast radius of a corrupted
  /// mid-chain delta). <= 1 stores every epoch as a keyframe.
  int checkpoint_keyframe_every = 8;

  /// Safety valve for diverging queries.
  int max_strata = 10000;

  /// Failure detector: missed probe rounds before a worker is suspected,
  /// and further missed rounds before a suspected worker is declared dead.
  int heartbeat_suspect_rounds = 1;
  int heartbeat_confirm_rounds = 1;

  /// Retransmission attempts per message before the sender declares the
  /// peer unreachable. Sized above the largest injected drop window so the
  /// ack/retransmit protocol, not test tolerance, survives chaos drops.
  int send_retry_budget = 16;

  /// Per-inbox flow-control bound (messages); 0 disables backpressure.
  size_t channel_capacity = 1024;

  /// Recovery passes attempted (with backoff) before the query fails; a
  /// checkpoint DataLoss inside the budget degrades to restart strategy.
  int recovery_retry_budget = 8;

  /// Chaos-harness invariant checkers (debug/test builds): after every
  /// stratum the driver verifies the in-flight message count, checkpoint
  /// readability under the current failure set, and Δ-conservation —
  /// replaying all checkpointed Δ sets reproduces each fixpoint's mutable
  /// state bit-for-bit.
  bool verify_invariants = false;

  /// Record per-operator per-port wall time in Consume. Counts (batches,
  /// tuples, puncts, deltas emitted) are always kept — they are plain
  /// increments — but timing reads the clock around every Consume, which
  /// on local single-delta edges is effectively per-tuple; set false for
  /// peak-throughput runs.
  bool profile_operators = true;
};

class TraceRing;

/// Everything an operator needs from its hosting worker.
struct ExecContext {
  int worker_id = 0;
  Network* network = nullptr;
  const PartitionMap* pmap = nullptr;  // the query's partition snapshot
  UdfRegistry* udfs = nullptr;
  StorageCatalog* storage = nullptr;
  MetricsRegistry* metrics = nullptr;  // this worker's registry
  VoteBoard* votes = nullptr;
  CheckpointStore* checkpoints = nullptr;
  const EngineConfig* config = nullptr;

  int current_stratum = 0;

  /// This worker's incarnation number (bumped on every revive). Stamped on
  /// fixpoint votes so the board can ignore votes from a previous life.
  int incarnation = 0;

  /// Non-null while a recovery reload is in progress: the partition
  /// snapshot that was in effect before the failure (scans use it to find
  /// rows whose ownership moved).
  const PartitionMap* old_pmap = nullptr;

  /// True while guided-replay recovery re-runs checkpointed strata through
  /// the loop body: fixpoints feed state from checkpoints, discard arriving
  /// deltas (they are regenerations of history), and suppress voting and
  /// re-checkpointing.
  bool replay_mode = false;

  /// This worker's bounded event trace (owned by the WorkerNode); operators
  /// record notable events (checkpoint writes). May be null in bare-metal
  /// operator tests.
  TraceRing* trace = nullptr;
};

}  // namespace rex

#endif  // REX_EXEC_EXEC_CONTEXT_H_
