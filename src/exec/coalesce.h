// Delta coalescing: fold a delta stream to its net effect before it is
// flushed or shuffled (DBSP-style Z-set normalization before exchange).
//
// Three independent mechanisms, each sound under a different contract:
//
//  1. Weight algebra (always on). Per key, every insert/delete/replace
//     delta is folded into a ℤ-set net — tuple → signed multiplicity —
//     where +t adds its weight, -t subtracts it, and ->(t') is the
//     composite {-1·t', +1·t}. Terms that reach weight zero are eliminated;
//     what survives is rendered back as canonical deltas (one -1/+1 pair
//     becomes ->(t'), everything else weighted deletes then inserts). The
//     old chain rules all fall out as special cases of weight addition:
//        +t  then -t        annihilate            (+1 - 1 = 0)
//        -t  then +t        annihilate            (t was live upstream)
//        -t  then +t'       fold to ->(t') t'     (net {-t, +t'})
//        +a  then ->(a→b)   fold to +b
//        ->(a→b) then ->(b→c)  fold to ->(a→c); dropped entirely if a == c
//        ->(a→b) then -b    fold to -a
//     Sound for any consumer that applies deltas to keyed state, under the
//     stream-consistency contract every producer in this engine honors: a
//     -() or ->(old) only refers to a tuple that is live downstream.
//     δ() deltas are opaque handler payloads and never participate (their
//     weight rides through untouched, except weight zero which is a no-op
//     and is dropped).
//
//  2. Idempotent dedupe (opt-in, plan-declared). Exact repeats of a key's
//     live +()/δ() deltas are dropped. Only sound when the consumer's
//     application is idempotent — e.g. SSSP's min-keeping handler, where a
//     second δ(v, d) can never improve on the first — and unsound for
//     counting or summing consumers, which is why the plan must declare it
//     (RehashOp::Params::idempotent_updates).
//
//  3. Run packing (opt-in, wire only). Each key whose surviving deltas are
//     a uniform run of +() or δ() is shipped as one kBatch delta carrying
//     the key once and the per-key payload sequence as a list. The per-key
//     payload order is preserved exactly, so any per-group downstream fold
//     (including order-sensitive floating-point sums) sees an unchanged
//     sequence; only the cross-key interleave changes, which no per-group
//     fold observes. The receiving RehashOp expands before pushing
//     downstream, so kBatch never reaches another operator.
#ifndef REX_EXEC_COALESCE_H_
#define REX_EXEC_COALESCE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/delta.h"
#include "common/status.h"

namespace rex {

struct CoalesceOptions {
  /// Field positions forming the key all rules group by. Empty = the whole
  /// tuple is the key (chain rules across distinct tuples cannot fire).
  std::vector<int> key_fields;
  /// Mechanism 2: drop exact repeats of live +()/δ() deltas within a key.
  bool dedupe_idempotent = false;
  /// Mechanism 3: pack each key's uniform +()/δ() run into one kBatch
  /// delta. Only for streams headed to a RehashOp network port.
  bool pack_runs = false;
  /// Attempt the columnar fast paths first (EngineConfig::columnar_batches):
  /// streams that convert to a DeltaBatch run the fold over typed columns —
  /// bit-identical output and stats, no per-row Tuple projection/hashing.
  /// Streams outside the batch domain silently take the scalar path.
  bool columnar = false;
};

struct CoalesceStats {
  int64_t deltas_in = 0;
  int64_t deltas_out = 0;
  /// Deltas removed by the algebra and dedupe (packing does not "fold";
  /// its payloads are all still delivered).
  int64_t folded = 0;
  /// Wire bytes saved end to end: ByteSize(in) - ByteSize(out), including
  /// the key-sharing savings of packing.
  int64_t bytes_saved = 0;
  /// Input rows that were folded by a columnar fast path (a subset of
  /// deltas_in; feeds the exec.batch_rows meter).
  int64_t columnar_rows = 0;
};

class DeltaCoalescer {
 public:
  explicit DeltaCoalescer(CoalesceOptions options)
      : options_(std::move(options)) {}

  const CoalesceOptions& options() const { return options_; }

  /// Folds `in` to its net effect. Survivors keep their original relative
  /// order (a fold leaves the composed delta at the earlier position);
  /// streams nothing applies to come back untouched. `stats` accumulates
  /// (never resets), so one struct can meter a whole query.
  ///
  /// Fails with InvalidArgument instead of invoking signed-overflow UB when
  /// a key's accumulated ℤ-set weight leaves the int64 range (hostile or
  /// pathological long-lived accumulations — exactly the regime standing
  /// queries create), or when an input delta carries the non-negatable
  /// weight INT64_MIN.
  Result<DeltaVec> Coalesce(DeltaVec in, CoalesceStats* stats) const;

  /// Expands kBatch deltas produced by pack_runs back into the original
  /// per-key delta sequences. Cheap no-op for streams without kBatch.
  /// Fails on a structurally malformed batch (engine bug or corruption).
  static Result<DeltaVec> Expand(DeltaVec in);

 private:
  DeltaVec PackRuns(DeltaVec in) const;
  /// Columnar fast path dispatcher: nullopt means "not applicable, run the
  /// scalar fold"; a value is the final (possibly error) result.
  std::optional<Result<DeltaVec>> TryColumnar(DeltaVec& in,
                                              CoalesceStats* stats) const;

  CoalesceOptions options_;
};

}  // namespace rex

#endif  // REX_EXEC_COALESCE_H_
