#include "exec/fixpoint.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.h"
#include "common/serde.h"
#include "obs/trace_ring.h"

namespace rex {

namespace {

uint64_t HashKey(const std::vector<Value>& key) {
  uint64_t h = 0x853c49e6748fea9bULL;
  for (const Value& v : key) h = HashCombine(h, v.Hash());
  return h;
}

/// Checkpoint encoding: the full delta serde (op, ℤ-set weight, tuple, and
/// any kReplace old tuple) rides as one string field. The previous
/// field-splicing encoding silently dropped old_tuple — and would have
/// dropped the weight — so replayed kReplace deltas were not bit-for-bit
/// what was applied.
Tuple EncodeCheckpoint(const Delta& d) {
  return Tuple{Value(SerializeDelta(d))};
}

Result<Delta> DecodeCheckpoint(const Tuple& t) {
  if (t.size() != 1 || t.field(0).type() != ValueType::kString) {
    return Status::ParseError("malformed checkpoint tuple");
  }
  return DeserializeDelta(t.field(0).AsString());
}

}  // namespace

Status FixpointOp::Open(ExecContext* ctx) {
  REX_RETURN_NOT_OK(Operator::Open(ctx));
  // The key-match loops index tuples through static_cast<size_t>, so a
  // negative index would wrap to a huge offset instead of failing; reject
  // it at plan time.
  for (int k : params_.key_fields) {
    if (k < 0) {
      return Status::InvalidArgument(
          "fixpoint key field index must be non-negative, got " +
          std::to_string(k));
    }
  }
  if (!params_.while_handler.empty()) {
    REX_ASSIGN_OR_RETURN(handler_,
                         ctx->udfs->GetWhileHandler(params_.while_handler));
  }
  coalescer_.reset();
  if (ctx->config->coalesce_deltas && params_.mode == Mode::kDelta) {
    CoalesceOptions opts;
    opts.key_fields = params_.key_fields;
    opts.columnar = ctx->config->columnar_batches;
    coalescer_.emplace(std::move(opts));
    deltas_coalesced_ = ctx->metrics->GetCounter(metrics::kDeltasCoalesced);
    coalesce_bytes_saved_ =
        ctx->metrics->GetCounter(metrics::kCoalesceBytesSaved);
    batch_rows_ = ctx->metrics->GetCounter(metrics::kBatchRows);
  }
  return Status::OK();
}

std::vector<Value> FixpointOp::KeyOf(const Tuple& t) const {
  std::vector<Value> key;
  key.reserve(params_.key_fields.size());
  for (int k : params_.key_fields) {
    key.push_back(t.field(static_cast<size_t>(k)));
  }
  return key;
}

FixpointOp::Bucket* FixpointOp::FindOrCreate(const std::vector<Value>& key) {
  auto& chain = state_.FindOrCreate(HashKey(key));
  for (Bucket& b : chain) {
    if (b.key == key) return &b;
  }
  chain.push_back(Bucket{key, TupleSet()});
  return &chain.back();
}

FixpointOp::Bucket* FixpointOp::FindOrCreateFromTuple(const Tuple& t) {
  uint64_t h = 0x853c49e6748fea9bULL;
  if (params_.key_fields.empty()) {
    // Keyless (kAccumulate) fixpoints deduplicate on the whole tuple;
    // bucket by its full hash so the duplicate scan stays O(1) instead of
    // degenerating into one gigantic chain.
    h = HashCombine(h, t.Hash());
  }
  for (int k : params_.key_fields) {
    h = HashCombine(h, t.field(static_cast<size_t>(k)).Hash());
  }
  auto& chain = state_.FindOrCreate(h);
  for (Bucket& b : chain) {
    bool match = b.key.size() == params_.key_fields.size();
    for (size_t i = 0; match && i < b.key.size(); ++i) {
      match = b.key[i] == t.field(static_cast<size_t>(params_.key_fields[i]));
    }
    if (match) return &b;
  }
  chain.push_back(Bucket{KeyOf(t), TupleSet()});
  return &chain.back();
}

Status FixpointOp::Apply(const Delta& d) {
  Bucket* b = FindOrCreateFromTuple(d.tuple);

  if (handler_ != nullptr) {
    if (d.op == DeltaOp::kDelete) {
      // Set-plane deletion is handled generically: while-state handlers
      // model revision (δ application), not retraction, so a -() clears the
      // key's bucket without consulting them and propagates nothing —
      // re-derivation after a base-table update reseeds the key if it is
      // still reachable. The clear is a state change, so it enters the Δ
      // log for bit-for-bit replay.
      if (b->tuples.size() > 0) {
        state_size_ -= b->tuples.size();
        b->tuples = TupleSet();
        stats_.new_tuples += 1;
        stats_.changed_tuples += 1;
        if (!replaying_) applied_log_.push_back(d);
      }
      return Status::OK();
    }
    const size_t before = b->tuples.size();
    REX_ASSIGN_OR_RETURN(DeltaVec produced, handler_->update(&b->tuples, d));
    state_size_ += b->tuples.size() - before;
    // Arrivals the handler acted on belong in the checkpoint: those it
    // propagated, and — when it keeps unpropagated state (sub-threshold
    // accumulation) — every arrival, since each one is a state change.
    if (!replaying_ &&
        (handler_->keeps_unpropagated_state || !produced.empty())) {
      applied_log_.push_back(d);
    }
    if (!produced.empty()) {
      stats_.new_tuples += static_cast<int64_t>(produced.size());
      stats_.changed_tuples += static_cast<int64_t>(produced.size());
      for (Delta& p : produced) pending_.push_back(std::move(p));
    }
    return Status::OK();
  }

  if (params_.mode == Mode::kAccumulate) {
    // Recursive-SQL semantics: set-semantics on the whole tuple; nothing
    // is ever revised, every distinct derivation accumulates.
    for (const Tuple& existing : b->tuples) {
      if (existing == d.tuple) return Status::OK();  // duplicate
    }
    b->tuples.Add(d.tuple);
    ++state_size_;
    stats_.new_tuples += 1;
    if (!replaying_) applied_log_.push_back(d);
    pending_.push_back(Delta::Insert(d.tuple));
    return Status::OK();
  }

  // kDelta / kFull: at most one state tuple per key (set semantics with
  // in-place revision — the "refinement of state" of §3.2).
  if (d.op == DeltaOp::kDelete) {
    if (b->tuples.size() > 0) {
      Tuple old = b->tuples.at(0);
      b->tuples = TupleSet();
      --state_size_;
      stats_.new_tuples += 1;
      stats_.changed_tuples += 1;
      if (!replaying_) applied_log_.push_back(d);
      if (params_.mode == Mode::kDelta) {
        pending_.push_back(Delta::Delete(std::move(old)));
      }
    }
    return Status::OK();
  }

  if (b->tuples.empty()) {
    b->tuples.Add(d.tuple);
    ++state_size_;
    stats_.new_tuples += 1;
    if (!replaying_) applied_log_.push_back(d);
    if (params_.mode == Mode::kDelta) {
      pending_.push_back(Delta::Insert(d.tuple));
    }
    return Status::OK();
  }

  Tuple& existing = b->tuples.at(0);
  if (existing == d.tuple) return Status::OK();  // no observable change

  double change = 0.0;
  if (params_.value_field >= 0) {
    auto vf = static_cast<size_t>(params_.value_field);
    REX_ASSIGN_OR_RETURN(double new_v, d.tuple.field(vf).ToDouble());
    REX_ASSIGN_OR_RETURN(double old_v, existing.field(vf).ToDouble());
    change = std::fabs(new_v - old_v);
    stats_.max_change = std::max(stats_.max_change, change);
    const double cutoff = params_.change_threshold +
                          params_.relative_threshold * std::fabs(old_v);
    if (change <= cutoff) {
      // Below threshold: revise state silently, do not propagate — but the
      // revision is still a state change, so it still enters the Δ log
      // (replay re-derives the same silent decision).
      existing = d.tuple;
      if (!replaying_) applied_log_.push_back(d);
      return Status::OK();
    }
  }
  Tuple old = existing;
  existing = d.tuple;
  stats_.new_tuples += 1;
  stats_.changed_tuples += 1;
  if (!replaying_) applied_log_.push_back(d);
  if (params_.mode == Mode::kDelta) {
    pending_.push_back(Delta::Replace(std::move(old), d.tuple));
  }
  return Status::OK();
}

Status FixpointOp::SeedBaseUpdate(const DeltaVec& seeds,
                                  int checkpoint_stratum) {
  for (const Delta& d : seeds) REX_RETURN_NOT_OK(Apply(d));
  // The perturbation Δ is appended to the converged run's final-stratum
  // checkpoint: recovery truncates strictly *after* that stratum, so seeds
  // survive a mid-re-convergence crash, and replaying strata
  // [0, checkpoint_stratum] regenerates exactly the pending set produced
  // here (converged-final-stratum propagations — empty at a fixpoint — plus
  // the seeds'). Appending, not overwriting: the converged stratum's own Δ
  // entries must stay intact for Δ-conservation.
  REX_RETURN_NOT_OK(CheckpointPending(checkpoint_stratum, /*append=*/true));
  applied_log_.clear();
  // Seed application accounting must not leak into the resumed stratum's
  // vote: the vote reports what the stratum's own wave derived.
  stats_ = VoteStats{};
  return Status::OK();
}

Status FixpointOp::ConsumeDeltas(int /*port*/, DeltaVec deltas) {
  tuples_processed_->Add(static_cast<int64_t>(deltas.size()));
  // Guided-replay recovery: the loop body is re-deriving history to rebuild
  // its own state; the fixpoint's state comes from checkpoints instead, so
  // arriving regenerations are discarded.
  if (ctx_->replay_mode) return Status::OK();
  for (const Delta& d : deltas) REX_RETURN_NOT_OK(Apply(d));
  return Status::OK();
}

Status FixpointOp::StartStratum(int stratum) {
  if (stratum == 0) return Status::OK();  // base case feeds us instead
  DeltaVec flush;
  if (params_.mode == Mode::kFull) {
    // No-delta: re-emit the entire mutable set.
    for (const Tuple& t : StateTuples()) flush.push_back(Delta::Insert(t));
    pending_.clear();
  } else {
    flush.swap(pending_);
    if (coalescer_.has_value()) {
      CoalesceStats stats;
      REX_ASSIGN_OR_RETURN(flush,
                           coalescer_->Coalesce(std::move(flush), &stats));
      deltas_coalesced_->Add(stats.folded);
      coalesce_bytes_saved_->Add(stats.bytes_saved);
      if (stats.columnar_rows > 0) batch_rows_->Add(stats.columnar_rows);
    }
  }
  // Counted after coalescing: the per-stratum Δ cardinality the Figure 3 /
  // Figure 12 reproductions report is the net set actually propagated.
  ctx_->metrics->GetCounter(metrics::kDeltaTuples)
      ->Add(static_cast<int64_t>(flush.size()));
  REX_RETURN_NOT_OK(Emit(std::move(flush)));
  Punctuation p;
  p.kind = Punctuation::Kind::kEndOfStratum;
  p.stratum = stratum;
  return EmitPunct(p);
}

Status FixpointOp::CheckpointPending(int stratum, bool append) {
  if (!ctx_->config->checkpoint_deltas || ctx_->checkpoints == nullptr) {
    return Status::OK();
  }
  // Group the Δ set by the replica set of each tuple's key range so a
  // takeover node can always read the entries for ranges it inherits.
  const std::vector<int>& route_fields = params_.partition_fields.empty()
                                             ? params_.key_fields
                                             : params_.partition_fields;
  std::map<std::vector<int>, std::vector<Tuple>> by_replicas;
  for (const Delta& d : applied_log_) {
    uint64_t h = PartitionHash(d.tuple, route_fields);
    by_replicas[ctx_->pmap->Owners(h)].push_back(EncodeCheckpoint(d));
  }
  for (auto& [replicas, tuples] : by_replicas) {
    REX_RETURN_NOT_OK(ctx_->checkpoints->Put(id(), stratum, ctx_->worker_id,
                                             replicas, tuples, append));
  }
  if (by_replicas.empty() && !append) {
    // An empty checkpoint still marks the stratum complete for this node.
    // (An appended seed set never needs the marker: the stratum it extends
    // already completed and wrote its own.)
    REX_RETURN_NOT_OK(ctx_->checkpoints->Put(
        id(), stratum, ctx_->worker_id, ctx_->pmap->workers(), {}));
  }
  if (ctx_->trace != nullptr) {
    ctx_->trace->Record(TraceEvent::Kind::kCheckpointWrite, id(), stratum,
                        static_cast<int64_t>(applied_log_.size()));
  }
  return Status::OK();
}

Status FixpointOp::OnPortWaveComplete(int /*port*/, const Punctuation& p) {
  if (ctx_->replay_mode) {
    // Replay waves regenerate history: no vote, no re-checkpoint.
    stats_ = VoteStats{};
    ResetWave();
    return Status::OK();
  }
  // Never forward punctuation around the loop; vote to the requestor.
  stats_.state_size = static_cast<int64_t>(state_size_);
  REX_RETURN_NOT_OK(CheckpointPending(p.stratum));
  applied_log_.clear();  // next stratum starts a fresh Δ history
  ctx_->votes->Report(ctx_->worker_id, id(), p.stratum, stats_,
                      ctx_->incarnation);
  stats_ = VoteStats{};
  // Rearm for the next stratum's wave (closed ports stay closed).
  ResetWave();
  return Status::OK();
}

Status FixpointOp::ResetTransientState() {
  REX_RETURN_NOT_OK(Operator::ResetTransientState());
  stats_ = VoteStats{};
  applied_log_.clear();
  return Status::OK();
}

std::vector<Tuple> FixpointOp::StateTuples() const {
  std::vector<Tuple> out;
  out.reserve(state_size_);
  for (const auto& [hash, chain] : state_) {
    for (const Bucket& b : chain) {
      for (const Tuple& t : b.tuples) out.push_back(t);
    }
  }
  return out;
}

size_t FixpointOp::StateSize() const { return state_size_; }

Status FixpointOp::ApplyCheckpointStratum(int stratum) {
  pending_.clear();  // becomes this stratum's regenerated propagations
  stats_ = VoteStats{};
  REX_ASSIGN_OR_RETURN(
      std::vector<Tuple> tuples,
      ctx_->checkpoints->Read(id(), stratum, ctx_->worker_id));
  replaying_ = true;
  for (const Tuple& enc : tuples) {
    REX_ASSIGN_OR_RETURN(Delta d, DecodeCheckpoint(enc));
    // Only replay keys this worker now owns (same routing hash as the
    // rehash operators, so restored state lands where deltas arrive).
    const std::vector<int>& route_fields =
        params_.partition_fields.empty() ? params_.key_fields
                                         : params_.partition_fields;
    uint64_t h = PartitionHash(d.tuple, route_fields);
    if (ctx_->pmap->PrimaryOwner(h) != ctx_->worker_id) continue;
    Status st = Apply(d);
    if (!st.ok()) {
      replaying_ = false;
      return st;
    }
  }
  replaying_ = false;
  stats_ = VoteStats{};
  return Status::OK();
}

Status FixpointOp::RestoreFromCheckpoints(int last_stratum, bool log) {
  state_.Clear();
  state_size_ = 0;
  pending_.clear();
  applied_log_.clear();
  stats_ = VoteStats{};
  for (int s = 0; s <= last_stratum; ++s) {
    // Only the final stratum's replay output survives as pending_
    // (ApplyCheckpointStratum clears it on entry).
    REX_RETURN_NOT_OK(ApplyCheckpointStratum(s));
  }
  if (log) {
    REX_LOG(Info) << "fixpoint " << id() << " on worker " << ctx_->worker_id
                  << " restored " << state_size_ << " state tuples, "
                  << pending_.size() << " pending from checkpoints";
  }
  return Status::OK();
}

Status FixpointOp::VerifyCheckpointConservation(int last_stratum) {
  if (!ctx_->config->checkpoint_deltas || ctx_->checkpoints == nullptr ||
      last_stratum < 0) {
    return Status::OK();
  }
  // Replay every checkpointed Δ set on a scratch operator and demand the
  // result matches this operator's live state bit-for-bit.
  FixpointOp scratch(id(), params_);
  REX_RETURN_NOT_OK(scratch.Open(ctx_));
  REX_RETURN_NOT_OK(scratch.RestoreFromCheckpoints(last_stratum, false));

  auto sorted_serialized = [](const std::vector<Tuple>& ts) {
    std::vector<std::string> out;
    out.reserve(ts.size());
    for (const Tuple& t : ts) out.push_back(SerializeTuple(t));
    std::sort(out.begin(), out.end());
    return out;
  };
  auto sorted_deltas = [](const DeltaVec& ds) {
    std::vector<std::string> out;
    out.reserve(ds.size());
    for (const Delta& d : ds) out.push_back(SerializeTuple(EncodeCheckpoint(d)));
    std::sort(out.begin(), out.end());
    return out;
  };

  if (sorted_serialized(StateTuples()) !=
      sorted_serialized(scratch.StateTuples())) {
    return Status::Internal(
        "Δ-conservation violated: fixpoint " + std::to_string(id()) +
        " on worker " + std::to_string(ctx_->worker_id) +
        ": checkpoint replay state (" +
        std::to_string(scratch.StateSize()) + " tuples) != live state (" +
        std::to_string(StateSize()) + " tuples)");
  }
  if (sorted_deltas(pending_) != sorted_deltas(scratch.pending_)) {
    return Status::Internal(
        "Δ-conservation violated: fixpoint " + std::to_string(id()) +
        " on worker " + std::to_string(ctx_->worker_id) +
        ": checkpoint replay pending (" +
        std::to_string(scratch.pending_.size()) + ") != live pending (" +
        std::to_string(pending_.size()) + ")");
  }
  return Status::OK();
}

}  // namespace rex
