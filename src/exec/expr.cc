#include "exec/expr.h"

#include <cmath>

namespace rex {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kMod:
      return "%";
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "<>";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAnd:
      return "AND";
    case BinOp::kOr:
      return "OR";
  }
  return "?";
}

ExprPtr Expr::Column(int index, std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kColumn;
  e->column = index;
  e->column_name = std::move(name);
  return e;
}

ExprPtr Expr::Const(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kConst;
  e->constant = std::move(v);
  return e;
}

ExprPtr Expr::Binary(BinOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

ExprPtr Expr::Call(std::string fn, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kCall;
  e->fn_name = std::move(fn);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::Not(ExprPtr inner) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kNot;
  e->args.push_back(std::move(inner));
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return column_name.empty() ? "$" + std::to_string(column)
                                 : column_name;
    case Kind::kConst:
      return constant.ToString();
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + BinOpName(op) + " " +
             rhs->ToString() + ")";
    case Kind::kCall: {
      std::string out = fn_name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kNot:
      return "NOT " + args[0]->ToString();
  }
  return "?";
}

namespace {

bool IsComparison(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

Result<Value> EvalBinary(BinOp op, const Value& a, const Value& b) {
  if (op == BinOp::kAnd || op == BinOp::kOr) {
    if (a.type() != ValueType::kBool || b.type() != ValueType::kBool) {
      return Status::TypeError("AND/OR require boolean operands");
    }
    return Value(op == BinOp::kAnd ? (a.AsBool() && b.AsBool())
                                   : (a.AsBool() || b.AsBool()));
  }
  if (IsComparison(op)) {
    switch (op) {
      case BinOp::kEq:
        return Value(a == b);
      case BinOp::kNe:
        return Value(a != b);
      case BinOp::kLt:
        return Value(a < b);
      case BinOp::kLe:
        return Value(!(b < a));
      case BinOp::kGt:
        return Value(b < a);
      case BinOp::kGe:
        return Value(!(a < b));
      default:
        break;
    }
  }
  // Arithmetic: integer op integer stays integer (except /), otherwise
  // evaluate in double.
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt &&
      op != BinOp::kDiv) {
    int64_t x = a.AsInt();
    int64_t y = b.AsInt();
    switch (op) {
      case BinOp::kAdd:
        return Value(x + y);
      case BinOp::kSub:
        return Value(x - y);
      case BinOp::kMul:
        return Value(x * y);
      case BinOp::kMod:
        if (y == 0) return Status::InvalidArgument("modulo by zero");
        return Value(x % y);
      default:
        break;
    }
  }
  REX_ASSIGN_OR_RETURN(double x, a.ToDouble());
  REX_ASSIGN_OR_RETURN(double y, b.ToDouble());
  switch (op) {
    case BinOp::kAdd:
      return Value(x + y);
    case BinOp::kSub:
      return Value(x - y);
    case BinOp::kMul:
      return Value(x * y);
    case BinOp::kDiv:
      if (y == 0.0) return Status::InvalidArgument("division by zero");
      return Value(x / y);
    case BinOp::kMod:
      return Value(std::fmod(x, y));
    default:
      return Status::Internal("unhandled binary op");
  }
}

}  // namespace

Result<Value> EvalExpr(const Expr& expr, const Tuple& tuple,
                       const UdfRegistry* registry) {
  switch (expr.kind) {
    case Expr::Kind::kColumn:
      if (expr.column < 0 ||
          static_cast<size_t>(expr.column) >= tuple.size()) {
        return Status::OutOfRange("column " + std::to_string(expr.column) +
                                  " out of range for tuple of arity " +
                                  std::to_string(tuple.size()));
      }
      return tuple.field(static_cast<size_t>(expr.column));
    case Expr::Kind::kConst:
      return expr.constant;
    case Expr::Kind::kBinary: {
      REX_ASSIGN_OR_RETURN(Value a, EvalExpr(*expr.lhs, tuple, registry));
      // Short-circuit booleans.
      if (expr.op == BinOp::kAnd && a.type() == ValueType::kBool &&
          !a.AsBool()) {
        return Value(false);
      }
      if (expr.op == BinOp::kOr && a.type() == ValueType::kBool &&
          a.AsBool()) {
        return Value(true);
      }
      REX_ASSIGN_OR_RETURN(Value b, EvalExpr(*expr.rhs, tuple, registry));
      return EvalBinary(expr.op, a, b);
    }
    case Expr::Kind::kCall: {
      if (registry == nullptr) {
        return Status::InvalidArgument("UDF call '" + expr.fn_name +
                                       "' without a registry");
      }
      REX_ASSIGN_OR_RETURN(const ScalarUdf* udf,
                           registry->GetScalar(expr.fn_name));
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const ExprPtr& a : expr.args) {
        REX_ASSIGN_OR_RETURN(Value v, EvalExpr(*a, tuple, registry));
        args.push_back(std::move(v));
      }
      return udf->fn(args);
    }
    case Expr::Kind::kNot: {
      REX_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.args[0], tuple, registry));
      if (v.type() != ValueType::kBool) {
        return Status::TypeError("NOT requires a boolean operand");
      }
      return Value(!v.AsBool());
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> EvalPredicate(const Expr& expr, const Tuple& tuple,
                           const UdfRegistry* registry) {
  REX_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, tuple, registry));
  if (v.is_null()) return false;
  if (v.type() == ValueType::kBool) return v.AsBool();
  return Status::TypeError("predicate evaluated to non-boolean " +
                           v.ToString());
}

Result<ValueType> InferType(const Expr& expr, const Schema& schema,
                            const UdfRegistry* registry) {
  switch (expr.kind) {
    case Expr::Kind::kColumn:
      if (expr.column < 0 ||
          static_cast<size_t>(expr.column) >= schema.size()) {
        return Status::OutOfRange("column index out of schema range");
      }
      return schema.field(static_cast<size_t>(expr.column)).type;
    case Expr::Kind::kConst:
      return expr.constant.type();
    case Expr::Kind::kBinary: {
      REX_ASSIGN_OR_RETURN(ValueType lt,
                           InferType(*expr.lhs, schema, registry));
      REX_ASSIGN_OR_RETURN(ValueType rt,
                           InferType(*expr.rhs, schema, registry));
      if (IsComparison(expr.op) || expr.op == BinOp::kAnd ||
          expr.op == BinOp::kOr) {
        return ValueType::kBool;
      }
      if (expr.op == BinOp::kDiv) return ValueType::kDouble;
      if (lt == ValueType::kInt && rt == ValueType::kInt) {
        return ValueType::kInt;
      }
      return ValueType::kDouble;
    }
    case Expr::Kind::kCall: {
      if (registry == nullptr) {
        return Status::InvalidArgument("cannot type UDF without registry");
      }
      REX_ASSIGN_OR_RETURN(const ScalarUdf* udf,
                           registry->GetScalar(expr.fn_name));
      return udf->out_type;
    }
    case Expr::Kind::kNot:
      return ValueType::kBool;
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace rex
