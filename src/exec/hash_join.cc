#include "exec/hash_join.h"

#include "exec/vectorized.h"

namespace rex {

Status HashJoinOp::Open(ExecContext* ctx) {
  REX_RETURN_NOT_OK(Operator::Open(ctx));
  // The key loops index tuples through static_cast<size_t>, so a negative
  // index would wrap instead of failing; reject it at plan time.
  for (int side = 0; side < 2; ++side) {
    for (int k : KeysOf(side)) {
      if (k < 0) {
        return Status::InvalidArgument(
            std::string("join ") + (side == 0 ? "left" : "right") +
            " key field index must be non-negative, got " +
            std::to_string(k));
      }
    }
  }
  if (!params_.handler.empty()) {
    REX_ASSIGN_OR_RETURN(handler_, ctx->udfs->GetJoinHandler(params_.handler));
  } else if (params_.handler_owns_all) {
    return Status::InvalidArgument(
        "handler_owns_all requires a join handler name");
  }
  columnar_ = ctx->config->columnar_batches;
  if (columnar_) {
    batch_rows_ = ctx->metrics->GetCounter(metrics::kBatchRows);
    batch_batches_ = ctx->metrics->GetCounter(metrics::kBatchBatches);
    batch_fallback_rows_ =
        ctx->metrics->GetCounter(metrics::kBatchFallbackRows);
  }
  return Status::OK();
}

std::vector<Value> HashJoinOp::KeyValues(const Tuple& t, int port) const {
  const auto& keys = KeysOf(port);
  std::vector<Value> out;
  out.reserve(keys.size());
  for (int k : keys) out.push_back(t.field(static_cast<size_t>(k)));
  return out;
}

namespace {
constexpr uint64_t kJoinHashSeed = 0x2545f4914f6cdd1dULL;

uint64_t HashKey(const std::vector<Value>& key) {
  uint64_t h = kJoinHashSeed;
  for (const Value& v : key) h = HashCombine(h, v.Hash());
  return h;
}
}  // namespace

uint64_t HashJoinOp::HashTupleKey(const Tuple& t, int port) const {
  uint64_t h = kJoinHashSeed;
  for (int k : KeysOf(port)) {
    h = HashCombine(h, t.field(static_cast<size_t>(k)).Hash());
  }
  return h;
}

bool HashJoinOp::KeyMatches(const Bucket& b, const Tuple& t,
                            int port) const {
  const auto& keys = KeysOf(port);
  if (b.key.size() != keys.size()) return false;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!(b.key[i] == t.field(static_cast<size_t>(keys[i])))) return false;
  }
  return true;
}

HashJoinOp::Bucket* HashJoinOp::FindBucketFromTuple(const Tuple& t,
                                                    int port) {
  return FindBucketFromTuple(t, port, HashTupleKey(t, port));
}

HashJoinOp::Bucket* HashJoinOp::FindBucketFromTuple(const Tuple& t, int port,
                                                    uint64_t hash) {
  std::vector<Bucket>* chain = buckets_.Find(hash);
  if (chain == nullptr) return nullptr;
  for (Bucket& b : *chain) {
    if (KeyMatches(b, t, port)) return &b;
  }
  return nullptr;
}

HashJoinOp::Bucket* HashJoinOp::FindOrCreateFromTuple(const Tuple& t,
                                                      int port) {
  return FindOrCreateFromTuple(t, port, HashTupleKey(t, port));
}

HashJoinOp::Bucket* HashJoinOp::FindOrCreateFromTuple(const Tuple& t,
                                                      int port,
                                                      uint64_t hash) {
  auto& chain = buckets_.FindOrCreate(hash);
  for (Bucket& b : chain) {
    if (KeyMatches(b, t, port)) return &b;
  }
  chain.push_back(Bucket{KeyValues(t, port), {}});
  return &chain.back();
}

HashJoinOp::Bucket* HashJoinOp::FindBucket(const std::vector<Value>& key,
                                           uint64_t hash) {
  std::vector<Bucket>* chain = buckets_.Find(hash);
  if (chain == nullptr) return nullptr;
  for (Bucket& b : *chain) {
    if (b.key == key) return &b;
  }
  return nullptr;
}

HashJoinOp::Bucket* HashJoinOp::FindOrCreate(const std::vector<Value>& key,
                                             uint64_t hash) {
  Bucket* b = FindBucket(key, hash);
  if (b != nullptr) return b;
  auto& chain = buckets_.FindOrCreate(hash);
  chain.push_back(Bucket{key, {}});
  return &chain.back();
}

Status HashJoinOp::Probe(int port, const Tuple& t, DeltaOp op,
                         int64_t weight, DeltaVec* out, uint64_t hash) {
  Bucket* b = FindBucketFromTuple(t, port, hash);
  if (b == nullptr) return Status::OK();
  const int other = 1 - port;
  for (const Tuple& match : b->side[other]) {
    Tuple joined = port == 0 ? t.Concat(match) : match.Concat(t);
    Delta d;
    d.op = op;
    d.tuple = std::move(joined);
    // The join is bilinear in ℤ-sets: Δ(L ⋈ R) for a weighted change on
    // one side is the change's weight times each opposite-side match
    // (whose own multiplicity is the physical copy count iterated here).
    d.weight = weight;
    out->push_back(std::move(d));
  }
  return Status::OK();
}

Status HashJoinOp::ApplyStandard(int port, Delta d, DeltaVec* out) {
  // Insert/delete canonicalization never changes d.tuple, so the key hash
  // can be computed once up front.
  const uint64_t hash = HashTupleKey(d.tuple, port);
  return ApplyStandard(port, std::move(d), out, hash);
}

Status HashJoinOp::ApplyStandard(int port, Delta d, DeltaVec* out,
                                 uint64_t hash) {
  const bool immutable_side = params_.immutable[port];
  // Canonicalize the set plane: insert of weight -w is a delete of weight
  // w, and weight zero is a no-op everywhere.
  if (d.op == DeltaOp::kInsert || d.op == DeltaOp::kDelete) {
    if (d.weight == 0) return Status::OK();
    if (d.weight < 0) {
      if (d.weight == INT64_MIN) {
        return Status::InvalidArgument(
            "delta weight INT64_MIN is not negatable: " + d.ToString());
      }
      d.op = d.op == DeltaOp::kInsert ? DeltaOp::kDelete : DeltaOp::kInsert;
      d.weight = -d.weight;
    }
  }
  switch (d.op) {
    case DeltaOp::kInsert:
    case DeltaOp::kUpdate: {
      // δ(E) with no handler: "propagate the annotation as if it were
      // another (hidden) attribute of the tuple" — plain insert semantics
      // with the annotation (weight included, opaque) preserved on
      // outputs. A weighted +() materializes its multiplicity as physical
      // copies, so bucket cardinality equals ℤ-set multiplicity.
      Bucket* b = FindOrCreateFromTuple(d.tuple, port, hash);
      const int64_t copies = d.op == DeltaOp::kInsert ? d.weight : 1;
      for (int64_t i = 0; i < copies; ++i) b->side[port].Add(d.tuple);
      if (!immutable_side) {
        REX_RETURN_NOT_OK(Probe(port, d.tuple, d.op, d.weight, out, hash));
      }
      return Status::OK();
    }
    case DeltaOp::kDelete: {
      Bucket* b = FindBucketFromTuple(d.tuple, port, hash);
      if (b != nullptr) {
        for (int64_t i = 0; i < d.weight; ++i) {
          if (!b->side[port].Remove(d.tuple)) break;
        }
      }
      if (!immutable_side) {
        REX_RETURN_NOT_OK(
            Probe(port, d.tuple, DeltaOp::kDelete, d.weight, out, hash));
      }
      return Status::OK();
    }
    case DeltaOp::kReplace: {
      std::vector<Value> new_key = KeyValues(d.tuple, port);
      std::vector<Value> old_key = KeyValues(d.old_tuple, port);
      if (new_key == old_key) {
        Bucket* b = FindOrCreate(new_key, HashKey(new_key));
        // Upsert: a replace whose old image was never buffered (e.g. the
        // first -> for a key) still lands the new image in the bucket.
        b->side[port].ReplaceOrInsert(d.old_tuple, d.tuple);
        // Matches see a replacement of the joined tuple.
        const int other = 1 - port;
        for (const Tuple& match : b->side[other]) {
          Delta rd;
          rd.op = DeltaOp::kReplace;
          rd.tuple =
              port == 0 ? d.tuple.Concat(match) : match.Concat(d.tuple);
          rd.old_tuple = port == 0 ? d.old_tuple.Concat(match)
                                   : match.Concat(d.old_tuple);
          out->push_back(std::move(rd));
        }
        return Status::OK();
      }
      // Key changed: a deletion-insertion sequence (§3.3).
      REX_RETURN_NOT_OK(
          ApplyStandard(port, Delta::Delete(d.old_tuple), out));
      return ApplyStandard(port, Delta::Insert(d.tuple), out);
    }
    case DeltaOp::kBatch:
      // Wire-only packing; the receiving rehash expands it.
      return Status::Internal("packed batch delta reached a join");
  }
  return Status::Internal("unhandled delta op in join");
}

Status HashJoinOp::ApplyHandler(int port, const Delta& d, DeltaVec* out) {
  return ApplyHandler(port, d, out, HashTupleKey(d.tuple, port));
}

Status HashJoinOp::ApplyHandler(int port, const Delta& d, DeltaVec* out,
                                uint64_t hash) {
  Bucket* b = FindOrCreateFromTuple(d.tuple, port, hash);
  // The handler sees the bucket its delta arrived into first, then the
  // opposite side (the paper's LEFTBUCKET/RIGHTBUCKET convention).
  REX_ASSIGN_OR_RETURN(DeltaVec produced,
                       handler_->update(&b->side[port], &b->side[1 - port],
                                        d));
  for (Delta& p : produced) out->push_back(std::move(p));
  return Status::OK();
}

Status HashJoinOp::ConsumeDeltas(int port, DeltaVec deltas) {
  tuples_processed_->Add(static_cast<int64_t>(deltas.size()));
  // Columnar plane: for an in-domain batch, hash the key columns
  // column-at-a-time (strings hash once per distinct interned value) and
  // feed the precomputed hashes to the per-row build/probe. An empty key
  // list means whole-tuple hashing on the scalar path's terms (bare
  // seed), which SeededKeyHashRows does not reproduce — keep scalar.
  std::vector<uint64_t> hashes;
  bool hashed = false;
  if (columnar_ && !deltas.empty() && !KeysOf(port).empty()) {
    std::optional<DeltaBatch> batch = DeltaBatch::FromDeltas(deltas);
    if (batch.has_value() && batch->KeyFieldsInRange(KeysOf(port))) {
      SeededKeyHashRows(*batch, kJoinHashSeed, KeysOf(port), &hashes);
      hashed = true;
      batch_rows_->Add(static_cast<int64_t>(deltas.size()));
      batch_batches_->Add(1);
    } else {
      batch_fallback_rows_->Add(static_cast<int64_t>(deltas.size()));
    }
  }
  DeltaVec out;
  for (size_t i = 0; i < deltas.size(); ++i) {
    Delta& d = deltas[i];
    const bool use_handler =
        handler_ != nullptr && !params_.immutable[port] &&
        (params_.handler_owns_all || d.op == DeltaOp::kUpdate);
    if (use_handler) {
      if (hashed) {
        REX_RETURN_NOT_OK(ApplyHandler(port, d, &out, hashes[i]));
      } else {
        REX_RETURN_NOT_OK(ApplyHandler(port, d, &out));
      }
    } else if (hashed) {
      REX_RETURN_NOT_OK(ApplyStandard(port, std::move(d), &out, hashes[i]));
    } else {
      REX_RETURN_NOT_OK(ApplyStandard(port, std::move(d), &out));
    }
  }
  return Emit(std::move(out));
}

size_t HashJoinOp::StateSize() const {
  size_t n = 0;
  for (const auto& [hash, chain] : buckets_) {
    for (const Bucket& b : chain) n += b.side[0].size() + b.side[1].size();
  }
  return n;
}

}  // namespace rex
