// The push-based pipelined operator framework (§4.2).
//
// Every operator is instantiated once per worker as part of a LocalPlan.
// Data flows as batches of annotated tuples (DeltaVec); operators consume
// deltas on numbered input ports and Emit() to their wired outputs. Strata
// are delimited by punctuation waves:
//
//  - Each input port expects a known number of punctuation markers per wave
//    (1 for a local edge, one per live worker for a rehash receiver).
//  - kEndOfStream punctuation closes a port permanently (immutable inputs
//    and the base case are punctuated exactly once).
//  - When every open port has completed the current wave — and at least one
//    marker arrived since the last firing — the operator calls
//    OnAllPunct(), where stateful operators emit their stratum output, and
//    then forwards the punctuation to its outputs.
//
// Fixpoint overrides the per-port hook (OnPortWaveComplete) because its two
// inputs (base case, recursive case) complete in *different* strata and it
// must never forward punctuation around the recursive loop — it votes to
// the driver instead.
#ifndef REX_EXEC_OPERATOR_H_
#define REX_EXEC_OPERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/delta.h"
#include "exec/exec_context.h"
#include "net/message.h"

namespace rex {

/// Per-input-port execution stats, maintained by the Consume/OnPunct
/// wrappers. Plain (non-atomic) fields: only the hosting worker thread
/// writes them, and the driver reads them after the network is quiescent.
struct OperatorPortStats {
  int64_t batches = 0;
  int64_t tuples = 0;
  int64_t puncts = 0;
  int64_t consume_nanos = 0;  // inclusive of downstream push time
};

class Operator {
 public:
  explicit Operator(int id, int num_ports = 1);
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  int id() const { return id_; }
  virtual const char* name() const = 0;

  /// Wires this operator's output to `op`'s input `port` (local edge).
  void AddOutput(Operator* op, int port);

  /// Sets how many punctuation markers complete a wave on `port`
  /// (default 1; a rehash receiver expects one per live worker).
  void SetExpectedPuncts(int port, int count);

  int num_ports() const { return static_cast<int>(expected_puncts_.size()); }

  bool PortClosed(int port) const {
    return port_closed_[static_cast<size_t>(port)];
  }
  /// True for operators (with >= 1 port) whose every input stream has been
  /// fully delivered — such operators forward kEndOfStream downstream.
  bool AllPortsClosed() const;
  /// Recovery priming: marks `port` as having completed its kEndOfStream
  /// wave. A freshly instantiated plan on a revived worker missed the
  /// stream-once waves (base case, immutable inputs) that ran before the
  /// failure; without this, AllOpenPortsComplete() blocks every later wave.
  void MarkPortDelivered(int port);

  /// Resolves UDFs, sizes buffers. Called once per query on each worker.
  virtual Status Open(ExecContext* ctx);

  /// Processes a batch of deltas arriving on `port`. Non-virtual wrapper:
  /// records per-port stats (batches, tuples, and — when
  /// EngineConfig::profile_operators — wall time), then runs the
  /// operator-specific ConsumeDeltas hook.
  Status Consume(int port, DeltaVec deltas);

  /// Handles one punctuation marker on `port` (wave bookkeeping + firing).
  Status OnPunct(int port, const Punctuation& p);

  /// Per-port stats accumulated so far (index == port number).
  const std::vector<OperatorPortStats>& port_stats() const {
    return port_stats_;
  }
  /// Total deltas this operator pushed to local downstream edges via Emit.
  int64_t deltas_emitted() const { return deltas_emitted_; }

  /// Source hook: called by the worker on a StartStratum control message.
  /// Scans emit their data in stratum 0; fixpoints flush pending deltas in
  /// strata >= 1. Default: no-op.
  virtual Status StartStratum(int stratum);

  virtual Status Close();

  // -- recovery hooks (§4.3) ------------------------------------------------

  /// Drops partial-stratum transient state (wave counters, stratum-scoped
  /// buffers) while preserving persistent state. Called on every survivor
  /// when a failure interrupts a stratum.
  virtual Status ResetTransientState();

  /// Incremental recovery: re-emits rows whose ownership moved from the
  /// failed worker (scans feeding immutable operator state implement this;
  /// ctx->old_pmap holds the pre-failure snapshot). No punctuation is sent.
  virtual Status RecoveryReload();

  /// Cluster membership changed (new partition snapshot installed):
  /// operators depending on the worker count (rehash receivers) adjust.
  virtual Status OnMembershipChange();

 protected:
  /// Operator-specific delta processing; called through the Consume
  /// wrapper (which owns the per-port accounting).
  virtual Status ConsumeDeltas(int port, DeltaVec deltas) = 0;

  /// Forwards deltas to every wired output (copies when fan-out > 1).
  Status Emit(DeltaVec deltas);
  /// Forwards a punctuation marker to every wired output.
  Status EmitPunct(const Punctuation& p);

  /// Called when `port`'s current wave completes (or the port closes via
  /// kEndOfStream). Default: fire OnAllPunct + forward once all open ports
  /// have completed.
  virtual Status OnPortWaveComplete(int port, const Punctuation& p);

  /// Stratum-end hook for stateful operators: emit buffered results before
  /// the punctuation is forwarded. Default: no-op.
  virtual Status OnAllPunct(const Punctuation& p);

  /// Shared wave bookkeeping used by OnPortWaveComplete overrides.
  bool AllOpenPortsComplete() const;
  void ResetWave();

  ExecContext* ctx_ = nullptr;
  /// Cached per-worker counter (resolved once at Open; incrementing a
  /// Counter* is a relaxed atomic add — never do the name lookup per
  /// tuple).
  Counter* tuples_processed_ = nullptr;

 private:
  int id_;
  struct Output {
    Operator* op;
    int port;
  };
  std::vector<Output> outputs_;

  std::vector<int> expected_puncts_;
  std::vector<int> received_puncts_;
  std::vector<bool> port_complete_;  // this wave
  std::vector<bool> port_closed_;    // kEndOfStream seen
  bool any_punct_this_wave_ = false;

  std::vector<OperatorPortStats> port_stats_;
  int64_t deltas_emitted_ = 0;
  bool profile_timing_ = false;  // from EngineConfig::profile_operators
};

}  // namespace rex

#endif  // REX_EXEC_OPERATOR_H_
