#include "exec/vectorized.h"

#include <cmath>

namespace rex {

// ---------------------------------------------------------------- hashes --

namespace {

/// Appends the Value::Hash of every row of one column into `out` (resized
/// by the caller). Tight per-type loops: no variant dispatch per row.
void ColumnValueHashes(const DeltaBatch& batch, size_t col,
                       std::vector<uint64_t>* out) {
  const BatchColumn& c = batch.column(col);
  const size_t n = batch.NumRows();
  switch (c.type) {
    case BatchColType::kInt:
      for (size_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(c.ints[i]);
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        (*out)[i] = HashMix(bits);
      }
      break;
    case BatchColType::kDouble:
      for (size_t i = 0; i < n; ++i) {
        double d = c.doubles[i];
        if (d == 0.0) d = 0.0;  // normalize -0.0
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        (*out)[i] = HashMix(bits);
      }
      break;
    case BatchColType::kString: {
      // One hash per distinct string (precomputed at intern time), gathered
      // per row by id.
      const StringPool& pool = batch.pool();
      for (size_t i = 0; i < n; ++i) {
        (*out)[i] = pool.HashOf(c.str_ids[i]);
      }
      break;
    }
  }
}

void CombineColumnHashes(const DeltaBatch& batch, uint64_t seed,
                         const std::vector<size_t>& cols,
                         std::vector<uint64_t>* hashes) {
  const size_t n = batch.NumRows();
  hashes->assign(n, seed);
  std::vector<uint64_t> field(n);
  for (size_t col : cols) {
    ColumnValueHashes(batch, col, &field);
    for (size_t i = 0; i < n; ++i) {
      (*hashes)[i] = HashCombine((*hashes)[i], field[i]);
    }
  }
}

}  // namespace

void PartitionHashRows(const DeltaBatch& batch,
                       const std::vector<int>& key_fields,
                       std::vector<uint64_t>* hashes) {
  if (key_fields.size() == 1) {
    // PartitionHash of a single-field key is exactly Value::Hash.
    hashes->resize(batch.NumRows());
    ColumnValueHashes(batch, static_cast<size_t>(key_fields[0]), hashes);
    return;
  }
  std::vector<size_t> cols;
  cols.reserve(key_fields.size());
  for (int f : key_fields) cols.push_back(static_cast<size_t>(f));
  CombineColumnHashes(batch, 0x2545f4914f6cdd1dULL, cols, hashes);
}

void SeededKeyHashRows(const DeltaBatch& batch, uint64_t seed,
                       const std::vector<int>& key_fields,
                       std::vector<uint64_t>* hashes) {
  std::vector<size_t> cols;
  if (key_fields.empty()) {
    for (size_t c = 0; c < batch.NumColumns(); ++c) cols.push_back(c);
  } else {
    cols.reserve(key_fields.size());
    for (int f : key_fields) cols.push_back(static_cast<size_t>(f));
  }
  CombineColumnHashes(batch, seed, cols, hashes);
}

// ----------------------------------------------------- predicate compile --

/// Statically-typed evaluation plan node. `kind` of the produced vector is
/// fixed at compile time; evaluation can therefore run whole columns
/// without per-row type dispatch.
struct CompiledPredicate::Node {
  enum class Op : uint8_t {
    kColInt,     // load int column `col`
    kColDouble,  // load double column `col`
    kConstInt,
    kConstDouble,
    kConstBool,
    kCompare,  // bin ∈ {Eq, Ne, Lt, Le, Gt, Ge} over numeric children
    kArith,    // bin ∈ {Add, Sub, Mul, Div, Mod} over numeric children
    kAnd,
    kOr,
    kNot,
  };
  enum class Kind : uint8_t { kInt, kDouble, kBool };

  Op op = Op::kConstBool;
  Kind out = Kind::kBool;
  BinOp bin = BinOp::kAdd;
  int col = -1;
  int64_t const_int = 0;
  double const_double = 0;
  bool const_bool = false;
  std::shared_ptr<const Node> a;
  std::shared_ptr<const Node> b;
};

namespace {

using Node = CompiledPredicate::Node;
using NodePtr = std::shared_ptr<const Node>;
using Kind = Node::Kind;

bool IsComparisonOp(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsNumericKind(Kind k) { return k == Kind::kInt || k == Kind::kDouble; }

/// The literal numeric value of a const expr, if it is one.
std::optional<double> LiteralNumeric(const Expr& e) {
  if (e.kind != Expr::Kind::kConst) return std::nullopt;
  if (e.constant.type() == ValueType::kInt) {
    return static_cast<double>(e.constant.AsInt());
  }
  if (e.constant.type() == ValueType::kDouble) return e.constant.AsDouble();
  return std::nullopt;
}

std::optional<NodePtr> CompileNode(const Expr& e,
                                   const std::vector<BatchColType>& schema) {
  auto node = std::make_shared<Node>();
  switch (e.kind) {
    case Expr::Kind::kColumn: {
      if (e.column < 0 || static_cast<size_t>(e.column) >= schema.size()) {
        return std::nullopt;  // scalar path raises OutOfRange
      }
      node->col = e.column;
      switch (schema[static_cast<size_t>(e.column)]) {
        case BatchColType::kInt:
          node->op = Node::Op::kColInt;
          node->out = Kind::kInt;
          break;
        case BatchColType::kDouble:
          node->op = Node::Op::kColDouble;
          node->out = Kind::kDouble;
          break;
        case BatchColType::kString:
          return std::nullopt;  // string ops stay scalar
      }
      return node;
    }
    case Expr::Kind::kConst:
      switch (e.constant.type()) {
        case ValueType::kInt:
          node->op = Node::Op::kConstInt;
          node->out = Kind::kInt;
          node->const_int = e.constant.AsInt();
          return node;
        case ValueType::kDouble:
          node->op = Node::Op::kConstDouble;
          node->out = Kind::kDouble;
          node->const_double = e.constant.AsDouble();
          return node;
        case ValueType::kBool:
          node->op = Node::Op::kConstBool;
          node->out = Kind::kBool;
          node->const_bool = e.constant.AsBool();
          return node;
        default:
          return std::nullopt;  // null / string / list constants
      }
    case Expr::Kind::kNot: {
      auto child = CompileNode(*e.args[0], schema);
      if (!child || (*child)->out != Kind::kBool) return std::nullopt;
      node->op = Node::Op::kNot;
      node->out = Kind::kBool;
      node->a = std::move(*child);
      return node;
    }
    case Expr::Kind::kCall:
      return std::nullopt;  // UDFs are opaque; scalar path only
    case Expr::Kind::kBinary:
      break;
  }

  auto lhs = CompileNode(*e.lhs, schema);
  if (!lhs) return std::nullopt;
  auto rhs = CompileNode(*e.rhs, schema);
  if (!rhs) return std::nullopt;
  const Kind lk = (*lhs)->out;
  const Kind rk = (*rhs)->out;
  node->bin = e.op;
  node->a = std::move(*lhs);
  node->b = std::move(*rhs);

  if (e.op == BinOp::kAnd || e.op == BinOp::kOr) {
    // Statically boolean on both sides: the scalar short-circuit can only
    // skip an evaluation that is provably side-effect- and error-free
    // here, so elementwise &&/|| is equivalent.
    if (lk != Kind::kBool || rk != Kind::kBool) return std::nullopt;
    node->op = e.op == BinOp::kAnd ? Node::Op::kAnd : Node::Op::kOr;
    node->out = Kind::kBool;
    return node;
  }
  if (IsComparisonOp(e.op)) {
    if (!IsNumericKind(lk) || !IsNumericKind(rk)) return std::nullopt;
    node->op = Node::Op::kCompare;
    node->out = Kind::kBool;
    return node;
  }
  // Arithmetic.
  if (!IsNumericKind(lk) || !IsNumericKind(rk)) return std::nullopt;
  if (e.op == BinOp::kDiv || e.op == BinOp::kMod) {
    // Only a provably nonzero literal divisor can never raise
    // division/modulo-by-zero; anything else must take the scalar path so
    // the error (and its interaction with AND/OR short-circuiting)
    // reproduces exactly.
    auto divisor = LiteralNumeric(*e.rhs);
    if (!divisor || *divisor == 0.0) return std::nullopt;
  }
  node->op = Node::Op::kArith;
  if (e.op == BinOp::kDiv) {
    node->out = Kind::kDouble;  // integer / integer evaluates in double
  } else {
    node->out =
        (lk == Kind::kInt && rk == Kind::kInt) ? Kind::kInt : Kind::kDouble;
  }
  return node;
}

/// Evaluation result: a typed vector, or a broadcast constant.
struct VecVal {
  Kind kind = Kind::kBool;
  bool is_const = false;
  int64_t ci = 0;
  double cd = 0;
  uint8_t cb = 0;
  const int64_t* borrow_ints = nullptr;  // column loads borrow the batch
  const double* borrow_doubles = nullptr;
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<uint8_t> bools;

  int64_t IntAt(size_t i) const {
    if (is_const) return ci;
    return borrow_ints != nullptr ? borrow_ints[i] : ints[i];
  }
  double DoubleAt(size_t i) const {
    if (is_const) return cd;
    if (kind == Kind::kInt) return static_cast<double>(IntAt(i));
    return borrow_doubles != nullptr ? borrow_doubles[i] : doubles[i];
  }
  uint8_t BoolAt(size_t i) const { return is_const ? cb : bools[i]; }
  /// Numeric view matching Value's cross-type compare (NumericOf).
  double NumericAt(size_t i) const {
    return kind == Kind::kInt ? static_cast<double>(IntAt(i)) : DoubleAt(i);
  }
};

VecVal EvalNode(const Node& node, const DeltaBatch& batch, size_t n) {
  VecVal out;
  out.kind = node.out;
  switch (node.op) {
    case Node::Op::kColInt:
      out.borrow_ints = batch.column(static_cast<size_t>(node.col)).ints.data();
      return out;
    case Node::Op::kColDouble:
      out.borrow_doubles =
          batch.column(static_cast<size_t>(node.col)).doubles.data();
      return out;
    case Node::Op::kConstInt:
      out.is_const = true;
      out.ci = node.const_int;
      out.cd = static_cast<double>(node.const_int);
      return out;
    case Node::Op::kConstDouble:
      out.is_const = true;
      out.cd = node.const_double;
      return out;
    case Node::Op::kConstBool:
      out.is_const = true;
      out.cb = node.const_bool ? 1 : 0;
      return out;
    default:
      break;
  }

  const VecVal a = EvalNode(*node.a, batch, n);
  if (node.op == Node::Op::kNot) {
    out.bools.resize(n);
    for (size_t i = 0; i < n; ++i) out.bools[i] = a.BoolAt(i) ? 0 : 1;
    return out;
  }
  const VecVal b = EvalNode(*node.b, batch, n);

  switch (node.op) {
    case Node::Op::kAnd:
      out.bools.resize(n);
      for (size_t i = 0; i < n; ++i) {
        out.bools[i] = (a.BoolAt(i) != 0 && b.BoolAt(i) != 0) ? 1 : 0;
      }
      return out;
    case Node::Op::kOr:
      out.bools.resize(n);
      for (size_t i = 0; i < n; ++i) {
        out.bools[i] = (a.BoolAt(i) != 0 || b.BoolAt(i) != 0) ? 1 : 0;
      }
      return out;
    case Node::Op::kCompare: {
      out.bools.resize(n);
      const bool exact_int = a.kind == Kind::kInt && b.kind == Kind::kInt;
      // Int/int compares exactly (Value::operator== on two ints is exact
      // int64 equality); any double operand compares through double,
      // matching MixedEquals / NumericOf. The scalar evaluator derives
      // kLe/kGt/kGe from operator< (kLe is !(b < a)), which differs from
      // native <= / >= when NaN is an operand — use the same derived
      // forms so NaN rows produce identical masks.
      auto cmp = [&](auto av, auto bv) -> uint8_t {
        switch (node.bin) {
          case BinOp::kEq:
            return av == bv;
          case BinOp::kNe:
            return av != bv;
          case BinOp::kLt:
            return av < bv;
          case BinOp::kLe:
            return !(bv < av);
          case BinOp::kGt:
            return bv < av;
          case BinOp::kGe:
            return !(av < bv);
          default:
            return 0;
        }
      };
      if (exact_int) {
        for (size_t i = 0; i < n; ++i) {
          out.bools[i] = cmp(a.IntAt(i), b.IntAt(i));
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          out.bools[i] = cmp(a.NumericAt(i), b.NumericAt(i));
        }
      }
      return out;
    }
    case Node::Op::kArith: {
      if (node.out == Kind::kInt) {
        // integer ⊕ integer stays integer (mod divisor is a nonzero
        // literal by compile-time guarantee).
        out.ints.resize(n);
        for (size_t i = 0; i < n; ++i) {
          const int64_t x = a.IntAt(i);
          const int64_t y = b.IntAt(i);
          switch (node.bin) {
            case BinOp::kAdd:
              out.ints[i] = x + y;
              break;
            case BinOp::kSub:
              out.ints[i] = x - y;
              break;
            case BinOp::kMul:
              out.ints[i] = x * y;
              break;
            case BinOp::kMod:
              out.ints[i] = x % y;
              break;
            default:
              break;
          }
        }
        return out;
      }
      out.doubles.resize(n);
      for (size_t i = 0; i < n; ++i) {
        const double x = a.DoubleAt(i);
        const double y = b.DoubleAt(i);
        switch (node.bin) {
          case BinOp::kAdd:
            out.doubles[i] = x + y;
            break;
          case BinOp::kSub:
            out.doubles[i] = x - y;
            break;
          case BinOp::kMul:
            out.doubles[i] = x * y;
            break;
          case BinOp::kDiv:
            out.doubles[i] = x / y;  // divisor statically nonzero
            break;
          case BinOp::kMod:
            out.doubles[i] = std::fmod(x, y);
            break;
          default:
            break;
        }
      }
      return out;
    }
    default:
      return out;
  }
}

}  // namespace

std::optional<CompiledPredicate> CompiledPredicate::Compile(
    const Expr& expr, const std::vector<BatchColType>& schema) {
  auto root = CompileNode(expr, schema);
  // EvalPredicate maps NULL to false and rejects non-boolean results; a
  // compiled tree is never null, so only statically-bool roots qualify.
  if (!root || (*root)->out == Node::Kind::kInt ||
      (*root)->out == Node::Kind::kDouble) {
    return std::nullopt;
  }
  return CompiledPredicate(std::move(*root));
}

void CompiledPredicate::Eval(const DeltaBatch& batch,
                             std::vector<uint8_t>* mask) const {
  const size_t n = batch.NumRows();
  VecVal v = EvalNode(*root_, batch, n);
  mask->resize(n);
  for (size_t i = 0; i < n; ++i) (*mask)[i] = v.BoolAt(i);
}

}  // namespace rex
