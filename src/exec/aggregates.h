// Built-in aggregate functions with full delta support (§3.3).
//
// The standard operators (min, max, sum, average, count) automatically
// handle insertion, deletion, and replacement deltas. Deletion from min/max
// requires the buffered multiset the paper describes: "it must determine
// the next-smallest value (which needs to be in its buffered state)".
#ifndef REX_EXEC_AGGREGATES_H_
#define REX_EXEC_AGGREGATES_H_

#include <memory>
#include <set>
#include <string>

#include "common/status.h"
#include "common/value.h"

namespace rex {

enum class AggKind : uint8_t { kSum, kCount, kMin, kMax, kAvg };

Result<AggKind> AggKindFromName(const std::string& name);
const char* AggKindName(AggKind kind);

/// Per-group intermediate state for one aggregate.
class AggState {
 public:
  virtual ~AggState() = default;
};

/// A built-in aggregate function: creates per-group state, applies
/// insert/delete (replace = delete old + insert new), and produces the
/// group's current result.
class AggFunction {
 public:
  virtual ~AggFunction() = default;

  virtual std::unique_ptr<AggState> NewState() const = 0;
  virtual Status Insert(AggState* state, const Value& v) const = 0;
  virtual Status Delete(AggState* state, const Value& v) const = 0;
  /// Applies `v` with ℤ-set multiplicity `w`: +w ≡ w inserts, -w ≡ w
  /// deletes, 0 ≡ no-op. Linear aggregates (sum/count/avg — see
  /// IsLinear()) override this with an O(1) weighted fold; the default
  /// replays |w| unit applications, which is correct for any aggregate.
  virtual Status ApplyWeighted(AggState* state, const Value& v,
                               int64_t w) const;
  /// Typed fast paths for the columnar plane: fold one unboxed cell with
  /// multiplicity `w`, bit-identical to ApplyWeighted on the boxed Value
  /// (including error messages). The defaults box and delegate; the linear
  /// builtins (sum/count/avg) override with direct accumulator code so the
  /// vectorized group-by never constructs a Value per row.
  virtual Status ApplyWeightedInt(AggState* state, int64_t v, int64_t w) const {
    return ApplyWeighted(state, Value(v), w);
  }
  virtual Status ApplyWeightedDouble(AggState* state, double v,
                                     int64_t w) const {
    return ApplyWeighted(state, Value(v), w);
  }
  /// Whether ApplyWeighted is an O(1) scale of the unit apply — the
  /// soundness condition for deriving this aggregate's delta handler
  /// mechanically from the weighted model.
  virtual bool IsLinear() const { return false; }
  virtual Result<Value> Current(const AggState* state) const = 0;
  /// Number of contributing inputs; 0 means the group is empty.
  virtual int64_t Count(const AggState* state) const = 0;
  virtual ValueType ResultType(ValueType input_type) const = 0;
};

/// Returns the singleton implementation for a built-in aggregate.
const AggFunction* GetAggFunction(AggKind kind);

// -- pre-aggregation (combiner) support (§5.2) ------------------------------
//
// sum/min/max/count are composable: partial results union by a "merge"
// aggregation (sum of sums, min of mins, sum of counts). avg pre-aggregates
// into (sum, count) pairs and finalizes with sum(sum)/sum(count); it is
// composable through its pre-aggregate. These descriptors drive the
// optimizer's pushdown.

struct PreAggSpec {
  bool available = false;
  /// Aggregate to run below the exchange/join.
  AggKind partial = AggKind::kSum;
  /// Aggregate that merges partials above.
  AggKind merge = AggKind::kSum;
  /// avg needs a companion count partial.
  bool needs_count_companion = false;
};

PreAggSpec GetPreAggSpec(AggKind kind);

/// Whether the aggregate's value depends on input multiplicity (sum, count,
/// avg do; min/max don't). Multiplicity-dependent composable aggregates
/// need multiply-compensation when pre-aggregated on both sides of a
/// multiplicative join (§5.2).
bool IsMultiplicitySensitive(AggKind kind);

}  // namespace rex

#endif  // REX_EXEC_AGGREGATES_H_
