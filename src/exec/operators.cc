#include "exec/operators.h"

#include <chrono>

#include "common/delta_codec.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/serde.h"

namespace rex {

// ---------------------------------------------------------------- ScanOp --

Status ScanOp::Open(ExecContext* ctx) {
  REX_RETURN_NOT_OK(Operator::Open(ctx));
  REX_ASSIGN_OR_RETURN(table_, ctx->storage->GetTable(params_.table));
  return Status::OK();
}

Status ScanOp::ConsumeDeltas(int, DeltaVec) {
  return Status::Internal("scan has no inputs");
}

Status ScanOp::EmitRows(std::vector<Tuple> rows) {
  const size_t batch = ctx_->config->network_batch_size;
  DeltaVec out;
  out.reserve(std::min(batch, rows.size()));
  for (Tuple& t : rows) {
    out.push_back(Delta::Insert(std::move(t)));
    if (out.size() >= batch) {
      REX_RETURN_NOT_OK(Emit(std::move(out)));
      out = DeltaVec();
      out.reserve(batch);
    }
  }
  return Emit(std::move(out));
}

Status ScanOp::StartStratum(int stratum) {
  if (stratum != 0) return Status::OK();
  REX_RETURN_NOT_OK(EmitRows(table_->PrimaryRows(ctx_->worker_id,
                                                 *ctx_->pmap)));
  Punctuation p;
  p.kind = params_.punct_kind;
  p.stratum = 0;
  return EmitPunct(p);
}

Status ScanOp::RecoveryReload() {
  if (!params_.feeds_immutable || ctx_->old_pmap == nullptr) {
    return Status::OK();
  }
  // The new snapshot's membership is exactly the live set; a revived
  // worker (present in neither old pmap nor any replica list) may fetch
  // its rows from any live holder.
  const std::vector<int>& live = ctx_->pmap->workers();
  REX_ASSIGN_OR_RETURN(
      std::vector<Tuple> rows,
      table_->TakeoverRows(ctx_->worker_id, *ctx_->old_pmap, *ctx_->pmap,
                           &live));
  // Data only: the downstream port was already punctuated before the
  // failure; re-punctuating would corrupt wave counts.
  return EmitRows(std::move(rows));
}

// -------------------------------------------------------------- FilterOp --

Status FilterOp::Open(ExecContext* ctx) {
  REX_RETURN_NOT_OK(Operator::Open(ctx));
  columnar_ = ctx->config->columnar_batches;
  compiled_.clear();
  batch_rows_ = ctx->metrics->GetCounter(metrics::kBatchRows);
  batch_batches_ = ctx->metrics->GetCounter(metrics::kBatchBatches);
  batch_fallback_rows_ =
      ctx->metrics->GetCounter(metrics::kBatchFallbackRows);
  return Status::OK();
}

Status FilterOp::ConsumeDeltas(int, DeltaVec deltas) {
  tuples_processed_->Add(static_cast<int64_t>(deltas.size()));
  if (columnar_ && !deltas.empty()) {
    auto batch = DeltaBatch::FromDeltas(deltas);
    if (batch.has_value()) {
      std::vector<BatchColType> types = batch->ColumnTypes();
      const std::optional<CompiledPredicate>* plan = nullptr;
      for (const auto& [sig, compiled] : compiled_) {
        if (sig == types) {
          plan = &compiled;
          break;
        }
      }
      if (plan == nullptr) {
        compiled_.emplace_back(types,
                               CompiledPredicate::Compile(*predicate_, types));
        plan = &compiled_.back().second;
      }
      if (plan->has_value()) {
        batch_rows_->Add(static_cast<int64_t>(deltas.size()));
        batch_batches_->Increment();
        std::vector<uint8_t> mask;
        (*plan)->Eval(*batch, &mask);
        DeltaVec out;
        out.reserve(deltas.size());
        for (size_t i = 0; i < deltas.size(); ++i) {
          if (mask[i] != 0) out.push_back(std::move(deltas[i]));
        }
        return Emit(std::move(out));
      }
    }
    batch_fallback_rows_->Add(static_cast<int64_t>(deltas.size()));
  }
  DeltaVec out;
  out.reserve(deltas.size());
  for (Delta& d : deltas) {
    if (d.op == DeltaOp::kReplace) {
      REX_ASSIGN_OR_RETURN(bool new_passes,
                           EvalPredicate(*predicate_, d.tuple, ctx_->udfs));
      REX_ASSIGN_OR_RETURN(
          bool old_passes,
          EvalPredicate(*predicate_, d.old_tuple, ctx_->udfs));
      if (new_passes && old_passes) {
        out.push_back(std::move(d));
      } else if (new_passes) {
        out.push_back(Delta::Insert(std::move(d.tuple)));
      } else if (old_passes) {
        out.push_back(Delta::Delete(std::move(d.old_tuple)));
      }
      continue;
    }
    REX_ASSIGN_OR_RETURN(bool passes,
                         EvalPredicate(*predicate_, d.tuple, ctx_->udfs));
    if (passes) out.push_back(std::move(d));
  }
  return Emit(std::move(out));
}

// ------------------------------------------------------------- ProjectOp --

Result<Tuple> ProjectOp::Apply(const Tuple& in) const {
  std::vector<Value> fields;
  fields.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    REX_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, in, ctx_->udfs));
    fields.push_back(std::move(v));
  }
  return Tuple(std::move(fields));
}

Status ProjectOp::ConsumeDeltas(int, DeltaVec deltas) {
  tuples_processed_->Add(static_cast<int64_t>(deltas.size()));
  DeltaVec out;
  out.reserve(deltas.size());
  for (const Delta& d : deltas) {
    Delta nd = d;
    REX_ASSIGN_OR_RETURN(nd.tuple, Apply(d.tuple));
    if (d.op == DeltaOp::kReplace) {
      REX_ASSIGN_OR_RETURN(nd.old_tuple, Apply(d.old_tuple));
    }
    out.push_back(std::move(nd));
  }
  return Emit(std::move(out));
}

// ------------------------------------------------------------- ApplyFnOp --

Status ApplyFnOp::Open(ExecContext* ctx) {
  REX_RETURN_NOT_OK(Operator::Open(ctx));
  REX_ASSIGN_OR_RETURN(fn_, ctx->udfs->GetTable(fn_name_));
  batch_size_ = std::max<size_t>(1, ctx->config->udf_batch_size);
  cache_enabled_ =
      fn_->deterministic && ctx->config->cache_deterministic_udfs;
  udf_nanos_ = ctx->metrics->GetCounter("udf." + fn_name_ + ".nanos");
  udf_calls_ = ctx->metrics->GetCounter("udf." + fn_name_ + ".calls");
  udf_in_ = ctx->metrics->GetCounter("udf." + fn_name_ + ".in");
  udf_out_ = ctx->metrics->GetCounter("udf." + fn_name_ + ".out");
  return Status::OK();
}

namespace {

/// Emulates the per-invocation overhead of a (Java-reflection-style)
/// dynamic call; batching amortizes this across a whole input batch.
void BurnInvokeOverhead(int units) {
  volatile uint64_t sink = 0;
  for (int i = 0; i < units * 50; ++i) {
    sink = sink + static_cast<uint64_t>(i) * static_cast<uint64_t>(i);
  }
}

}  // namespace

Result<DeltaVec> ApplyFnOp::Invoke(const DeltaVec& batch) {
  ctx_->metrics->GetCounter(metrics::kUdfCalls)->Increment();
  BurnInvokeOverhead(ctx_->config->udf_invoke_overhead);
  const auto start = std::chrono::steady_clock::now();
  DeltaVec out;
  if (fn_->batch_fn) {
    REX_ASSIGN_OR_RETURN(out, fn_->batch_fn(batch));
  } else {
    for (const Delta& d : batch) {
      REX_ASSIGN_OR_RETURN(DeltaVec partial, fn_->fn(d));
      for (Delta& p : partial) out.push_back(std::move(p));
    }
  }
  // Runtime monitoring (§5.1): feed measured cost and fanout back to the
  // optimizer (see Cluster::MeasuredUdfProfile).
  udf_nanos_->Add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count());
  udf_calls_->Increment();
  udf_in_->Add(static_cast<int64_t>(batch.size()));
  udf_out_->Add(static_cast<int64_t>(out.size()));
  return out;
}

Status ApplyFnOp::FlushBatch() {
  if (pending_.empty()) return Status::OK();
  DeltaVec batch;
  batch.swap(pending_);

  if (!cache_enabled_) {
    REX_ASSIGN_OR_RETURN(DeltaVec out, Invoke(batch));
    return Emit(std::move(out));
  }

  // Serve cached inputs; invoke the UDF once over the misses.
  DeltaVec out;
  DeltaVec misses;
  std::vector<size_t> miss_hashes;
  for (Delta& d : batch) {
    uint64_t h = HashCombine(static_cast<uint64_t>(d.op), d.tuple.Hash());
    auto it = cache_.find(h);
    const CacheEntry* hit = nullptr;
    if (it != cache_.end()) {
      for (const CacheEntry& e : it->second) {
        if (e.input == d) {
          hit = &e;
          break;
        }
      }
    }
    if (hit != nullptr) {
      ctx_->metrics->GetCounter(metrics::kUdfCacheHits)->Increment();
      for (const Delta& o : hit->outputs) out.push_back(o);
    } else {
      miss_hashes.push_back(h);
      misses.push_back(std::move(d));
    }
  }
  if (!misses.empty()) {
    // Invoke per miss so each input's outputs can be cached individually.
    ctx_->metrics->GetCounter(metrics::kUdfCalls)->Increment();
    BurnInvokeOverhead(ctx_->config->udf_invoke_overhead);
    for (size_t i = 0; i < misses.size(); ++i) {
      REX_ASSIGN_OR_RETURN(DeltaVec result, fn_->fn(misses[i]));
      cache_[miss_hashes[i]].push_back(CacheEntry{misses[i], result});
      for (Delta& r : result) out.push_back(std::move(r));
    }
  }
  return Emit(std::move(out));
}

Status ApplyFnOp::ConsumeDeltas(int, DeltaVec deltas) {
  tuples_processed_->Add(static_cast<int64_t>(deltas.size()));
  for (Delta& d : deltas) {
    pending_.push_back(std::move(d));
    if (pending_.size() >= batch_size_) REX_RETURN_NOT_OK(FlushBatch());
  }
  return Status::OK();
}

Status ApplyFnOp::OnAllPunct(const Punctuation&) { return FlushBatch(); }

Status ApplyFnOp::ResetTransientState() {
  REX_RETURN_NOT_OK(Operator::ResetTransientState());
  pending_.clear();
  return Status::OK();
}

// --------------------------------------------------------------- UnionOp --

Status UnionOp::ConsumeDeltas(int, DeltaVec deltas) {
  tuples_processed_->Add(static_cast<int64_t>(deltas.size()));
  return Emit(std::move(deltas));
}

// ---------------------------------------------------------------- SinkOp --

Status SinkOp::ConsumeDeltas(int, DeltaVec deltas) {
  for (Delta& d : deltas) {
    switch (d.op) {
      case DeltaOp::kInsert:
      case DeltaOp::kUpdate:
        results_.Add(std::move(d.tuple));
        break;
      case DeltaOp::kDelete:
        results_.Remove(d.tuple);
        break;
      case DeltaOp::kReplace:
        // Upsert: a -> whose old image never reached this sink (e.g. it
        // was folded away upstream) must still land the new image.
        results_.ReplaceOrInsert(d.old_tuple, std::move(d.tuple));
        break;
      case DeltaOp::kBatch:
        // Wire-only packing; the receiving rehash expands it.
        return Status::Internal("packed batch delta reached a sink");
    }
  }
  return Status::OK();
}

// -------------------------------------------------------------- RehashOp --

Status RehashOp::Open(ExecContext* ctx) {
  REX_RETURN_NOT_OK(Operator::Open(ctx));
  batch_size_ = ctx->config->network_batch_size;
  pending_.assign(static_cast<size_t>(ctx->network->num_workers()),
                  DeltaVec());
  SetExpectedPuncts(1, ctx->pmap->num_workers());
  coalescer_.reset();
  columnar_ = ctx->config->columnar_batches;
  batch_rows_ = ctx->metrics->GetCounter(metrics::kBatchRows);
  batch_batches_ = ctx->metrics->GetCounter(metrics::kBatchBatches);
  batch_fallback_rows_ =
      ctx->metrics->GetCounter(metrics::kBatchFallbackRows);
  if (ctx->config->coalesce_deltas && !params_.broadcast) {
    CoalesceOptions opts;
    opts.key_fields = params_.key_fields;
    opts.dedupe_idempotent = params_.idempotent_updates;
    opts.pack_runs = true;
    opts.columnar = columnar_;
    coalescer_.emplace(std::move(opts));
    deltas_coalesced_ = ctx->metrics->GetCounter(metrics::kDeltasCoalesced);
    coalesce_bytes_saved_ =
        ctx->metrics->GetCounter(metrics::kCoalesceBytesSaved);
  }
  wire_diff_ = ctx->config->diff_wire_runs && !params_.broadcast;
  wire_edges_.clear();
  run_raw_bytes_ = ctx->metrics->GetCounter(metrics::kRunRawBytes);
  run_compressed_bytes_ =
      ctx->metrics->GetCounter(metrics::kRunCompressedBytes);
  return Status::OK();
}

Status RehashOp::OnMembershipChange() {
  SetExpectedPuncts(1, ctx_->pmap->num_workers());
  // Receivers drop their edge mirrors across a membership change; restart
  // every edge with a self-contained kRaw run.
  wire_edges_.clear();
  return Status::OK();
}

Status RehashOp::FlushTo(int dest) {
  auto& buf = pending_[static_cast<size_t>(dest)];
  if (buf.empty()) return Status::OK();
  DeltaVec batch;
  batch.swap(buf);
  if (coalescer_.has_value()) {
    CoalesceStats stats;
    REX_ASSIGN_OR_RETURN(batch, coalescer_->Coalesce(std::move(batch), &stats));
    deltas_coalesced_->Add(stats.folded);
    coalesce_bytes_saved_->Add(stats.bytes_saved);
    if (stats.columnar_rows > 0) batch_rows_->Add(stats.columnar_rows);
    if (batch.empty()) return Status::OK();  // fully annihilated
  }
  if (wire_diff_) return SendWireRun(dest, std::move(batch));
  return ctx_->network->Send(
      Message::Data(ctx_->worker_id, dest, id(), /*port=*/1,
                    std::move(batch)));
}

namespace {
/// Runs smaller than this ship as plain deltas: the codec framing plus the
/// receiver-side decode would cost more than it saves, and tiny runs would
/// pollute the edge dictionary with unrepresentative bytes.
constexpr size_t kMinWireRunBytes = 128;
}  // namespace

Status RehashOp::SendWireRun(int dest, DeltaVec batch) {
  std::string raw = SerializeDeltas(batch);
  if (raw.size() < kMinWireRunBytes) {
    // Below the packing floor; the edge reference is untouched (both sides
    // skip payload-less messages), so the seq chain stays consistent.
    return ctx_->network->Send(Message::Data(ctx_->worker_id, dest, id(),
                                             /*port=*/1, std::move(batch)));
  }
  Message m = Message::Data(ctx_->worker_id, dest, id(), /*port=*/1, {});
  m.wire_tuples = static_cast<int64_t>(batch.size());
  m.wire_raw_size = static_cast<uint32_t>(raw.size());
  m.wire_raw_check = HashBytes(raw.data(), raw.size());
  run_raw_bytes_->Add(static_cast<int64_t>(raw.size()));
  WireEdge& edge = wire_edges_[dest];
  if (edge.run_seq > 0) {
    std::string enc = DeltaCodecEncode(edge.last_raw, raw);
    if (enc.size() < raw.size()) {  // byte-profitability gate
      m.wire_codec = Message::WireCodec::kDelta;
      m.wire_ref_seq = edge.run_seq;
      m.wire_ref_check = edge.last_check;
      m.wire_payload = std::move(enc);
    }
  }
  if (m.wire_codec == Message::WireCodec::kNone) {
    m.wire_codec = Message::WireCodec::kRaw;  // first run, or delta too big
    m.wire_payload = raw;
  }
  edge.run_seq += 1;
  m.wire_run_seq = edge.run_seq;
  edge.last_check = m.wire_raw_check;
  edge.last_raw = std::move(raw);
  run_compressed_bytes_->Add(static_cast<int64_t>(m.wire_payload.size()) +
                             static_cast<int64_t>(Message::kWireMetaBytes));
  return ctx_->network->Send(std::move(m));
}

Status RehashOp::FlushAll() {
  for (int w = 0; w < static_cast<int>(pending_.size()); ++w) {
    REX_RETURN_NOT_OK(FlushTo(w));
  }
  return Status::OK();
}

Status RehashOp::Route(Delta d) {
  if (params_.broadcast) {
    for (int w : ctx_->pmap->workers()) {
      if (w == ctx_->worker_id) {
        DeltaVec self{d};
        REX_RETURN_NOT_OK(Emit(std::move(self)));
      } else {
        pending_[static_cast<size_t>(w)].push_back(d);
        if (pending_[static_cast<size_t>(w)].size() >= batch_size_) {
          REX_RETURN_NOT_OK(FlushTo(w));
        }
      }
    }
    return Status::OK();
  }
  const uint64_t h = PartitionHash(d.tuple, params_.key_fields);
  return RouteHashed(std::move(d), h);
}

Status RehashOp::RouteHashed(Delta d, uint64_t h) {
  const int dest = ctx_->pmap->PrimaryOwner(h);
  if (dest == ctx_->worker_id) {
    DeltaVec self{std::move(d)};
    return Emit(std::move(self));
  }
  auto& buf = pending_[static_cast<size_t>(dest)];
  buf.push_back(std::move(d));
  if (buf.size() >= batch_size_) return FlushTo(dest);
  return Status::OK();
}

Status RehashOp::ConsumeDeltas(int port, DeltaVec deltas) {
  if (port == 1) {
    // Already routed to us; unpack any coalesced same-key runs so kBatch
    // never escapes the shuffle.
    REX_ASSIGN_OR_RETURN(deltas, DeltaCoalescer::Expand(std::move(deltas)));
    return Emit(std::move(deltas));
  }
  tuples_processed_->Add(static_cast<int64_t>(deltas.size()));
  if (columnar_ && !params_.broadcast && !params_.key_fields.empty() &&
      !deltas.empty()) {
    auto batch = DeltaBatch::FromDeltas(deltas);
    if (batch.has_value() && batch->KeyFieldsInRange(params_.key_fields)) {
      batch_rows_->Add(static_cast<int64_t>(deltas.size()));
      batch_batches_->Increment();
      std::vector<uint64_t> hashes;
      PartitionHashRows(*batch, params_.key_fields, &hashes);
      for (size_t i = 0; i < deltas.size(); ++i) {
        REX_RETURN_NOT_OK(RouteHashed(std::move(deltas[i]), hashes[i]));
      }
      return Status::OK();
    }
    batch_fallback_rows_->Add(static_cast<int64_t>(deltas.size()));
  }
  for (Delta& d : deltas) REX_RETURN_NOT_OK(Route(std::move(d)));
  return Status::OK();
}

Status RehashOp::OnPortWaveComplete(int port, const Punctuation& p) {
  if (port == 0) {
    // Local pipeline finished its wave: flush buffered batches, then tell
    // every peer's receiving half (including our own, via the network for
    // uniform counting) that we are done.
    REX_RETURN_NOT_OK(FlushAll());
    for (int w : ctx_->pmap->workers()) {
      REX_RETURN_NOT_OK(ctx_->network->Send(
          Message::Punct(ctx_->worker_id, w, id(), /*port=*/1, p)));
    }
    return Status::OK();
  }
  // Network side: every live worker has punctuated; the wave is globally
  // complete, so forward downstream and rearm for the next stratum.
  ResetWave();
  return EmitPunct(p);
}

Status RehashOp::ResetTransientState() {
  REX_RETURN_NOT_OK(Operator::ResetTransientState());
  for (DeltaVec& buf : pending_) buf.clear();
  // Recovery resets the receivers' edge mirrors too (kRecoverPrepare);
  // post-recovery runs restart every edge with a kRaw run.
  wire_edges_.clear();
  return Status::OK();
}

}  // namespace rex
