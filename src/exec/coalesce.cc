#include "exec/coalesce.h"

#include <cstddef>
#include <deque>
#include <unordered_map>
#include <utility>

#include "common/tuple.h"
#include "common/value.h"

namespace rex {

namespace {

struct Entry {
  Delta d;
  bool alive = true;
};

/// Per-key fold state. `last_chain` indexes the key's most recent live
/// insert/delete/replace entry (the open end of the composition chain);
/// `dups` indexes the key's live +()/δ() entries for idempotent dedupe.
struct KeyState {
  Tuple key;
  int last_chain = -1;
  std::vector<int> dups;
};

size_t TotalBytes(const DeltaVec& v) {
  size_t bytes = 0;
  for (const Delta& d : v) bytes += d.ByteSize();
  return bytes;
}

}  // namespace

DeltaVec DeltaCoalescer::Coalesce(DeltaVec in, CoalesceStats* stats) const {
  const size_t bytes_in = stats != nullptr ? TotalBytes(in) : 0;
  const size_t n_in = in.size();

  std::vector<Entry> entries;
  entries.reserve(in.size());
  std::unordered_map<uint64_t, std::vector<KeyState>> by_key;

  auto key_of = [this](const Delta& d) {
    return options_.key_fields.empty() ? d.tuple
                                       : d.tuple.Project(options_.key_fields);
  };
  auto state_of = [&by_key](Tuple key) -> KeyState& {
    auto& chain = by_key[key.Hash()];
    for (KeyState& ks : chain) {
      if (ks.key == key) return ks;
    }
    chain.push_back(KeyState{std::move(key), -1, {}});
    return chain.back();
  };
  auto is_duplicate = [&entries](const KeyState& ks, const Delta& d) {
    for (int i : ks.dups) {
      const Entry& e = entries[static_cast<size_t>(i)];
      if (e.alive && e.d.op == d.op && e.d.tuple == d.tuple) return true;
    }
    return false;
  };
  auto append = [&entries](KeyState& ks, Delta d, bool chain, bool dup) {
    const int idx = static_cast<int>(entries.size());
    entries.push_back(Entry{std::move(d), true});
    if (chain) ks.last_chain = idx;
    if (dup) ks.dups.push_back(idx);
  };

  for (Delta& d : in) {
    KeyState& ks = state_of(key_of(d));
    Entry* last = ks.last_chain >= 0
                      ? &entries[static_cast<size_t>(ks.last_chain)]
                      : nullptr;
    switch (d.op) {
      case DeltaOp::kUpdate: {
        if (options_.dedupe_idempotent) {
          if (is_duplicate(ks, d)) break;  // dropped
          append(ks, std::move(d), /*chain=*/false, /*dup=*/true);
        } else {
          append(ks, std::move(d), /*chain=*/false, /*dup=*/false);
        }
        break;
      }
      case DeltaOp::kInsert: {
        if (options_.dedupe_idempotent && is_duplicate(ks, d)) break;
        if (last != nullptr && last->d.op == DeltaOp::kDelete) {
          if (last->d.tuple == d.tuple) {
            // -t then +t: the delete referred to a live t, so the pair is
            // a net no-op.
            last->alive = false;
            ks.last_chain = -1;
          } else {
            // -t then +t': net replacement, folded at the delete's slot.
            last->d = Delta::Replace(std::move(last->d.tuple),
                                     std::move(d.tuple));
          }
          break;
        }
        append(ks, std::move(d), /*chain=*/true, options_.dedupe_idempotent);
        break;
      }
      case DeltaOp::kDelete: {
        if (last != nullptr && last->d.op == DeltaOp::kInsert &&
            last->d.tuple == d.tuple) {
          // +t then -t annihilate.
          last->alive = false;
          ks.last_chain = -1;
          break;
        }
        if (last != nullptr && last->d.op == DeltaOp::kReplace &&
            last->d.tuple == d.tuple) {
          // ->(a→b) then -b fold to -a.
          last->d = Delta::Delete(std::move(last->d.old_tuple));
          break;
        }
        append(ks, std::move(d), /*chain=*/true, /*dup=*/false);
        break;
      }
      case DeltaOp::kReplace: {
        if (last != nullptr && last->d.op == DeltaOp::kInsert &&
            last->d.tuple == d.old_tuple) {
          // +a then ->(a→b) fold to +b.
          last->d.tuple = std::move(d.tuple);
          break;
        }
        if (last != nullptr && last->d.op == DeltaOp::kReplace &&
            last->d.tuple == d.old_tuple) {
          if (last->d.old_tuple == d.tuple) {
            // ->(a→b) then ->(b→a): round trip, net no-op.
            last->alive = false;
            ks.last_chain = -1;
          } else {
            // ->(a→b) then ->(b→c) compose to ->(a→c).
            last->d.tuple = std::move(d.tuple);
          }
          break;
        }
        append(ks, std::move(d), /*chain=*/true, /*dup=*/false);
        break;
      }
      case DeltaOp::kBatch: {
        // Already packed (should not reach a coalescer); pass through.
        append(ks, std::move(d), /*chain=*/false, /*dup=*/false);
        break;
      }
    }
  }

  DeltaVec out;
  out.reserve(entries.size());
  for (Entry& e : entries) {
    if (e.alive) out.push_back(std::move(e.d));
  }
  const size_t folded = n_in - out.size();

  if (options_.pack_runs && !options_.key_fields.empty()) {
    out = PackRuns(std::move(out));
  }

  if (stats != nullptr) {
    stats->deltas_in += static_cast<int64_t>(n_in);
    stats->deltas_out += static_cast<int64_t>(out.size());
    stats->folded += static_cast<int64_t>(folded);
    const size_t bytes_out = TotalBytes(out);
    if (bytes_in > bytes_out) {
      stats->bytes_saved += static_cast<int64_t>(bytes_in - bytes_out);
    }
  }
  return out;
}

DeltaVec DeltaCoalescer::PackRuns(DeltaVec in) const {
  const size_t nkeys = options_.key_fields.size();

  // Group the stream per key; a key is packable only when every one of its
  // deltas is the same +()/δ() op over tuples of one arity wider than the
  // key (so the per-key payload sequence can be replayed exactly).
  struct KeyGroup {
    Tuple key;
    std::vector<size_t> members;
    bool packable = true;
    DeltaOp op = DeltaOp::kUpdate;
    size_t arity = 0;
  };
  // `all_groups` is a deque so KeyGroup addresses stay stable as groups are
  // added (the bucket map and `group_of` hold pointers into it).
  std::deque<KeyGroup> all_groups;
  std::unordered_map<uint64_t, std::vector<KeyGroup*>> groups;
  std::vector<KeyGroup*> group_of(in.size(), nullptr);

  for (size_t i = 0; i < in.size(); ++i) {
    const Delta& d = in[i];
    bool in_range = true;
    for (int kf : options_.key_fields) {
      if (kf < 0 || static_cast<size_t>(kf) >= d.tuple.size()) {
        in_range = false;
        break;
      }
    }
    if (!in_range) continue;  // never packed, never grouped
    Tuple key = d.tuple.Project(options_.key_fields);
    auto& chain = groups[key.Hash()];
    KeyGroup* g = nullptr;
    for (KeyGroup* cand : chain) {
      if (cand->key == key) {
        g = cand;
        break;
      }
    }
    if (g == nullptr) {
      all_groups.push_back(KeyGroup{std::move(key), {}, true,
                                    d.op, d.tuple.size()});
      g = &all_groups.back();
      chain.push_back(g);
    }
    g->members.push_back(i);
    group_of[i] = g;
    const bool elem_ok = (d.op == DeltaOp::kInsert ||
                          d.op == DeltaOp::kUpdate) &&
                         d.old_tuple.empty();
    if (!elem_ok || d.op != g->op || d.tuple.size() != g->arity ||
        g->arity <= nkeys) {
      g->packable = false;
    }
  }

  // Re-walking the group chains invalidates nothing: groups are stable now.
  DeltaVec out;
  out.reserve(in.size());
  std::vector<bool> consumed(in.size(), false);
  for (size_t i = 0; i < in.size(); ++i) {
    if (consumed[i]) continue;
    KeyGroup* g = group_of[i];
    if (g == nullptr || !g->packable || g->members.size() < 2) {
      out.push_back(std::move(in[i]));
      continue;
    }
    // Pack the whole key group at its first occurrence. Payload shape:
    // exactly one non-key field -> flat value per element; otherwise a
    // nested list of the non-key fields in ascending position order.
    std::vector<bool> is_key(g->arity, false);
    for (int kf : options_.key_fields) is_key[static_cast<size_t>(kf)] = true;
    const bool flat = (g->arity - nkeys == 1);
    size_t raw_bytes = 0;
    for (size_t m : g->members) raw_bytes += in[m].ByteSize();
    std::vector<Value> payload;
    payload.reserve(g->members.size());
    for (size_t m : g->members) {
      Tuple& t = in[m].tuple;
      if (flat) {
        for (size_t f = 0; f < g->arity; ++f) {
          if (!is_key[f]) {
            payload.push_back(t.field(f));
            break;
          }
        }
      } else {
        std::vector<Value> elem;
        elem.reserve(g->arity - nkeys);
        for (size_t f = 0; f < g->arity; ++f) {
          if (!is_key[f]) elem.push_back(t.field(f));
        }
        payload.push_back(Value::List(std::move(elem)));
      }
    }
    std::vector<Value> fields;
    fields.reserve(nkeys + 1);
    for (const Value& kv : g->key.fields()) fields.push_back(kv);
    fields.push_back(Value::List(std::move(payload)));
    // Header: [element op, original arity, key field positions...] — all the
    // receiver needs to replay the sequence without knowing the plan.
    std::vector<Value> header;
    header.reserve(2 + nkeys);
    header.push_back(Value(static_cast<int64_t>(g->op)));
    header.push_back(Value(static_cast<int64_t>(g->arity)));
    for (int kf : options_.key_fields) {
      header.push_back(Value(static_cast<int64_t>(kf)));
    }
    Delta packed;
    packed.op = DeltaOp::kBatch;
    packed.tuple = Tuple(std::move(fields));
    packed.old_tuple = Tuple(std::move(header));
    // Profitability gate: the batch header (element op, arity, key
    // positions) has a fixed cost, so short runs of narrow tuples can come
    // out LARGER packed than raw. Never inflate the wire — ship the run
    // as-is unless packing strictly shrinks it.
    if (packed.ByteSize() >= raw_bytes) {
      g->packable = false;
      out.push_back(std::move(in[i]));
      continue;
    }
    for (size_t m : g->members) consumed[m] = true;
    out.push_back(std::move(packed));
  }
  return out;
}

Result<DeltaVec> DeltaCoalescer::Expand(DeltaVec in) {
  bool any = false;
  for (const Delta& d : in) {
    if (d.op == DeltaOp::kBatch) {
      any = true;
      break;
    }
  }
  if (!any) return in;

  DeltaVec out;
  out.reserve(in.size());
  for (Delta& d : in) {
    if (d.op != DeltaOp::kBatch) {
      out.push_back(std::move(d));
      continue;
    }
    const Tuple& header = d.old_tuple;
    if (header.size() < 3) {
      return Status::DataLoss("batch delta header too short");
    }
    REX_ASSIGN_OR_RETURN(int64_t op_int, header.field(0).ToInt());
    REX_ASSIGN_OR_RETURN(int64_t arity_int, header.field(1).ToInt());
    if (op_int != static_cast<int64_t>(DeltaOp::kInsert) &&
        op_int != static_cast<int64_t>(DeltaOp::kUpdate)) {
      return Status::DataLoss("batch delta with non-insert/update op");
    }
    const DeltaOp elem_op = static_cast<DeltaOp>(op_int);
    const size_t arity = static_cast<size_t>(arity_int);
    const size_t num_keys = header.size() - 2;
    if (arity <= num_keys || d.tuple.size() != num_keys + 1) {
      return Status::DataLoss("batch delta shape mismatch");
    }
    std::vector<size_t> key_pos(num_keys);
    std::vector<bool> is_key(arity, false);
    for (size_t k = 0; k < num_keys; ++k) {
      REX_ASSIGN_OR_RETURN(int64_t kf, header.field(k + 2).ToInt());
      if (kf < 0 || static_cast<size_t>(kf) >= arity ||
          is_key[static_cast<size_t>(kf)]) {
        return Status::DataLoss("batch delta key position out of range");
      }
      key_pos[k] = static_cast<size_t>(kf);
      is_key[static_cast<size_t>(kf)] = true;
    }
    std::vector<size_t> payload_pos;
    payload_pos.reserve(arity - num_keys);
    for (size_t f = 0; f < arity; ++f) {
      if (!is_key[f]) payload_pos.push_back(f);
    }
    const Value& payload_field = d.tuple.field(num_keys);
    if (payload_field.type() != ValueType::kList) {
      return Status::DataLoss("batch delta payload is not a list");
    }
    const bool flat = (payload_pos.size() == 1);
    for (const Value& elem : payload_field.AsList()) {
      std::vector<Value> fields(arity);
      for (size_t k = 0; k < num_keys; ++k) {
        fields[key_pos[k]] = d.tuple.field(k);
      }
      if (flat) {
        fields[payload_pos[0]] = elem;
      } else {
        if (elem.type() != ValueType::kList ||
            elem.AsList().size() != payload_pos.size()) {
          return Status::DataLoss("batch delta payload element mismatch");
        }
        const std::vector<Value>& elem_fields = elem.AsList();
        for (size_t f = 0; f < payload_pos.size(); ++f) {
          fields[payload_pos[f]] = elem_fields[f];
        }
      }
      out.push_back(Delta{elem_op, Tuple(std::move(fields)), {}});
    }
  }
  return out;
}

}  // namespace rex
