#include "exec/coalesce.h"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <unordered_map>
#include <utility>

#include "common/delta_batch.h"
#include "common/tuple.h"
#include "common/value.h"
#include "exec/vectorized.h"

namespace rex {

namespace {

/// A stream position. Plain entries carry a passthrough delta (δ() traffic,
/// already-packed batches); a render slot (`render_of` >= 0) marks where a
/// key's folded ℤ-set net is emitted.
struct Entry {
  Delta d;
  bool alive = true;
  int render_of = -1;  // index into the key-state list, or -1 for plain
};

/// One term of a key's ℤ-set net: a tuple and its accumulated signed
/// multiplicity. Terms stay in first-contribution order; a term whose
/// weight reaches zero is erased (zero-weight elimination).
struct NetTerm {
  Tuple tuple;
  int64_t weight = 0;
};

/// Per-key fold state. Inserts, deletes, and both sides of a replace
/// accumulate into `net` as weight addition; `slot` is the entry index
/// where the surviving net is rendered (claimed at the first live
/// contribution, released whenever the net annihilates to zero so a later
/// contribution re-opens at its own position — exactly the chain algebra's
/// placement). `dups` indexes the key's live δ() entries for idempotent
/// dedupe.
struct KeyState {
  Tuple key;
  std::vector<NetTerm> net;
  int slot = -1;
  std::vector<int> dups;
};

size_t TotalBytes(const DeltaVec& v) {
  size_t bytes = 0;
  for (const Delta& d : v) bytes += d.ByteSize();
  return bytes;
}

/// Adds `w` to `tuple`'s multiplicity in the key's net. Weight addition is
/// unbounded accumulation over the stream, so the sum is overflow-checked:
/// a result outside int64 is an error, not UB.
Status Contribute(KeyState* ks, Tuple tuple, int64_t w) {
  if (w == 0) return Status::OK();
  for (size_t i = 0; i < ks->net.size(); ++i) {
    if (ks->net[i].tuple == tuple) {
      int64_t sum = 0;
      if (__builtin_add_overflow(ks->net[i].weight, w, &sum)) {
        return Status::InvalidArgument(
            "ℤ-set weight overflow coalescing tuple " + tuple.ToString() +
            ": " + std::to_string(ks->net[i].weight) + " + " +
            std::to_string(w) + " leaves int64 range");
      }
      ks->net[i].weight = sum;
      if (sum == 0) {
        ks->net.erase(ks->net.begin() + static_cast<ptrdiff_t>(i));
      }
      return Status::OK();
    }
  }
  ks->net.push_back(NetTerm{std::move(tuple), w});
  return Status::OK();
}

/// Signed multiplicity of `tuple` in the key's current net.
int64_t NetWeight(const KeyState& ks, const Tuple& tuple) {
  for (const NetTerm& term : ks.net) {
    if (term.tuple == tuple) return term.weight;
  }
  return 0;
}

/// Renders a key's surviving net back into canonical deltas. The clean
/// revision case (exactly one -1 and one +1) becomes ->(t'); anything else
/// is emitted as weighted deletes then weighted inserts, each in
/// first-contribution order.
void RenderNet(const KeyState& ks, DeltaVec* out) {
  int negs = 0;
  int poss = 0;
  for (const NetTerm& term : ks.net) {
    (term.weight < 0 ? negs : poss)++;
  }
  if (negs == 1 && poss == 1 && ks.net.size() == 2) {
    const NetTerm& neg = ks.net[0].weight < 0 ? ks.net[0] : ks.net[1];
    const NetTerm& pos = ks.net[0].weight > 0 ? ks.net[0] : ks.net[1];
    if (neg.weight == -1 && pos.weight == 1) {
      out->push_back(Delta::Replace(neg.tuple, pos.tuple));
      return;
    }
  }
  for (const NetTerm& term : ks.net) {
    if (term.weight < 0) {
      out->push_back(Delta{DeltaOp::kDelete, term.tuple, {}, -term.weight});
    }
  }
  for (const NetTerm& term : ks.net) {
    if (term.weight > 0) {
      out->push_back(Delta{DeltaOp::kInsert, term.tuple, {}, term.weight});
    }
  }
}

/// Tuple::Hash / Tuple::HashFields seed, for hashing projected keys
/// column-at-a-time without materializing the projection.
constexpr uint64_t kTupleHashSeed = 0x2545f4914f6cdd1dULL;

size_t BatchTotalBytes(const DeltaBatch& batch) {
  size_t bytes = 0;
  for (size_t r = 0; r < batch.NumRows(); ++r) bytes += batch.RowByteSize(r);
  return bytes;
}

/// Columnar mirror of the per-key ℤ-set fold: net terms reference batch
/// rows instead of owning Tuples, so key probes and term matches compare
/// raw column cells.
struct ColNetTerm {
  size_t row = 0;  // first-contribution row carrying the term's tuple
  int64_t weight = 0;
};

struct ColKeyState {
  size_t first_row = 0;  // key identity: this row's key fields
  std::vector<ColNetTerm> net;
  int slot = -1;
};

}  // namespace

std::optional<Result<DeltaVec>> DeltaCoalescer::TryColumnar(
    DeltaVec& in, CoalesceStats* stats) const {
  auto maybe_batch = DeltaBatch::FromDeltas(in);
  if (!maybe_batch) return std::nullopt;
  const DeltaBatch& batch = *maybe_batch;
  if (!batch.KeyFieldsInRange(options_.key_fields)) return std::nullopt;
  const size_t n = batch.NumRows();

  bool all_update = true;
  bool all_set = true;  // only kInsert / kDelete
  for (DeltaOp op : batch.ops()) {
    if (op != DeltaOp::kUpdate) all_update = false;
    if (op != DeltaOp::kInsert && op != DeltaOp::kDelete) all_set = false;
  }
  // Mixed streams and set-plane dedupe keep the scalar fold (dedupe's
  // net-presence rule interleaves with the ℤ algebra in ways not worth
  // duplicating here).
  if (!all_update && !all_set) return std::nullopt;
  if (all_set && options_.dedupe_idempotent) return std::nullopt;

  const size_t bytes_in = stats != nullptr ? BatchTotalBytes(batch) : 0;
  DeltaVec out;
  out.reserve(n);

  if (all_update && !options_.dedupe_idempotent) {
    // δ() passthrough: the scalar fold only drops weight-0 rows; the
    // per-delta key projection + KeyState it also performs has no
    // observable effect on a pure update stream, so skip it wholesale.
    for (size_t r = 0; r < n; ++r) {
      if (batch.weight(r) != 0) out.push_back(std::move(in[r]));
    }
  } else if (all_update) {
    // δ() + idempotent dedupe: drop exact repeats of a key's retained
    // (op, tuple, weight) rows. Retained rows per key index into the
    // batch; comparisons are raw column cells.
    std::vector<uint64_t> key_hash;
    SeededKeyHashRows(batch, kTupleHashSeed, options_.key_fields, &key_hash);
    std::deque<std::vector<size_t>> retained_by_state;
    std::unordered_map<uint64_t, std::vector<int>> by_key;
    auto rows_same_key = [&](size_t a, size_t b) {
      return options_.key_fields.empty()
                 ? batch.RowsEqual(a, b)
                 : batch.RowsEqualOnFields(a, b, options_.key_fields);
    };
    for (size_t r = 0; r < n; ++r) {
      if (batch.weight(r) == 0) continue;  // zero-weight elimination
      auto& chain = by_key[key_hash[r]];
      int state = -1;
      for (int idx : chain) {
        if (rows_same_key(retained_by_state[static_cast<size_t>(idx)].empty()
                              ? r  // state created by a row, never empty
                              : retained_by_state[static_cast<size_t>(idx)][0],
                          r)) {
          state = idx;
          break;
        }
      }
      if (state < 0) {
        state = static_cast<int>(retained_by_state.size());
        retained_by_state.emplace_back();
        chain.push_back(state);
      }
      auto& retained = retained_by_state[static_cast<size_t>(state)];
      bool dup = false;
      for (size_t prev : retained) {
        if (batch.weight(prev) == batch.weight(r) &&
            batch.RowsEqual(prev, r)) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
      retained.push_back(r);
      out.push_back(std::move(in[r]));
    }
  } else {
    // Set plane (+ / - only): the full ℤ-set fold over columns. Identical
    // placement rules: a key's render slot is claimed at its first live
    // contribution and released whenever its net annihilates.
    std::vector<uint64_t> key_hash;
    SeededKeyHashRows(batch, kTupleHashSeed, options_.key_fields, &key_hash);
    std::deque<ColKeyState> key_states;
    std::unordered_map<uint64_t, std::vector<int>> by_key;
    // entries[i] >= 0: render slot for that key-state index (this path has
    // no passthrough entries — every row is a contribution).
    std::vector<int> entries;
    std::vector<bool> entry_alive;
    auto rows_same_key = [&](size_t a, size_t b) {
      return options_.key_fields.empty()
                 ? batch.RowsEqual(a, b)
                 : batch.RowsEqualOnFields(a, b, options_.key_fields);
    };
    for (size_t r = 0; r < n; ++r) {
      auto& chain = by_key[key_hash[r]];
      int ks_idx = -1;
      for (int idx : chain) {
        if (rows_same_key(key_states[static_cast<size_t>(idx)].first_row,
                          r)) {
          ks_idx = idx;
          break;
        }
      }
      if (ks_idx < 0) {
        ks_idx = static_cast<int>(key_states.size());
        key_states.push_back(ColKeyState{r, {}, -1});
        chain.push_back(ks_idx);
      }
      ColKeyState& ks = key_states[static_cast<size_t>(ks_idx)];
      const int64_t w = batch.op(r) == DeltaOp::kDelete ? -batch.weight(r)
                                                        : batch.weight(r);
      if (w == 0) continue;  // zero-weight elimination, no entry
      bool found = false;
      for (size_t t = 0; t < ks.net.size(); ++t) {
        if (batch.RowsEqual(ks.net[t].row, r)) {
          int64_t sum = 0;
          if (__builtin_add_overflow(ks.net[t].weight, w, &sum)) {
            return Result<DeltaVec>(Status::InvalidArgument(
                "ℤ-set weight overflow coalescing tuple " +
                batch.MaterializeRow(r).ToString() + ": " +
                std::to_string(ks.net[t].weight) + " + " +
                std::to_string(w) + " leaves int64 range"));
          }
          ks.net[t].weight = sum;
          if (sum == 0) {
            ks.net.erase(ks.net.begin() + static_cast<ptrdiff_t>(t));
          }
          found = true;
          break;
        }
      }
      if (!found) ks.net.push_back(ColNetTerm{r, w});
      if (ks.net.empty()) {
        if (ks.slot >= 0) {
          entry_alive[static_cast<size_t>(ks.slot)] = false;
          ks.slot = -1;
        }
      } else if (ks.slot < 0) {
        ks.slot = static_cast<int>(entries.size());
        entries.push_back(ks_idx);
        entry_alive.push_back(true);
      }
    }
    for (size_t e = 0; e < entries.size(); ++e) {
      if (!entry_alive[e]) continue;
      const ColKeyState& ks = key_states[static_cast<size_t>(entries[e])];
      int negs = 0;
      int poss = 0;
      for (const ColNetTerm& term : ks.net) {
        (term.weight < 0 ? negs : poss)++;
      }
      if (negs == 1 && poss == 1 && ks.net.size() == 2) {
        const ColNetTerm& neg =
            ks.net[0].weight < 0 ? ks.net[0] : ks.net[1];
        const ColNetTerm& pos =
            ks.net[0].weight > 0 ? ks.net[0] : ks.net[1];
        if (neg.weight == -1 && pos.weight == 1) {
          out.push_back(Delta::Replace(batch.MaterializeRow(neg.row),
                                       batch.MaterializeRow(pos.row)));
          continue;
        }
      }
      for (const ColNetTerm& term : ks.net) {
        if (term.weight < 0) {
          out.push_back(Delta{DeltaOp::kDelete,
                              batch.MaterializeRow(term.row),
                              {},
                              -term.weight});
        }
      }
      for (const ColNetTerm& term : ks.net) {
        if (term.weight > 0) {
          out.push_back(Delta{DeltaOp::kInsert,
                              batch.MaterializeRow(term.row),
                              {},
                              term.weight});
        }
      }
    }
  }

  const int64_t folded = std::max<int64_t>(
      0, static_cast<int64_t>(n) - static_cast<int64_t>(out.size()));
  if (options_.pack_runs && !options_.key_fields.empty()) {
    out = PackRuns(std::move(out));
  }
  if (stats != nullptr) {
    stats->deltas_in += static_cast<int64_t>(n);
    stats->deltas_out += static_cast<int64_t>(out.size());
    stats->folded += folded;
    stats->columnar_rows += static_cast<int64_t>(n);
    const size_t bytes_out = TotalBytes(out);
    if (bytes_in > bytes_out) {
      stats->bytes_saved += static_cast<int64_t>(bytes_in - bytes_out);
    }
  }
  return Result<DeltaVec>(std::move(out));
}

Result<DeltaVec> DeltaCoalescer::Coalesce(DeltaVec in,
                                          CoalesceStats* stats) const {
  if (options_.columnar) {
    auto fast = TryColumnar(in, stats);
    if (fast.has_value()) return std::move(*fast);
  }
  const size_t bytes_in = stats != nullptr ? TotalBytes(in) : 0;
  const size_t n_in = in.size();

  std::vector<Entry> entries;
  entries.reserve(in.size());
  std::deque<KeyState> key_states;  // deque: stable addresses for indexes
  std::unordered_map<uint64_t, std::vector<int>> by_key;

  auto key_of = [this](const Delta& d) {
    return options_.key_fields.empty() ? d.tuple
                                       : d.tuple.Project(options_.key_fields);
  };
  auto state_index_of = [&](Tuple key) {
    auto& chain = by_key[key.Hash()];
    for (int i : chain) {
      if (key_states[static_cast<size_t>(i)].key == key) return i;
    }
    const int idx = static_cast<int>(key_states.size());
    key_states.push_back(KeyState{std::move(key), {}, -1, {}});
    chain.push_back(idx);
    return idx;
  };
  auto is_duplicate = [&entries](const KeyState& ks, const Delta& d) {
    for (int i : ks.dups) {
      const Entry& e = entries[static_cast<size_t>(i)];
      if (e.alive && e.d.op == d.op && e.d.tuple == d.tuple &&
          e.d.weight == d.weight) {
        return true;
      }
    }
    return false;
  };

  for (Delta& d : in) {
    // SignedWeight() and the replace split below negate the weight; the one
    // int64 with no negation is rejected up front rather than risked.
    if (d.weight == INT64_MIN) {
      return Status::InvalidArgument(
          "delta weight INT64_MIN is not negatable: " + d.ToString());
    }
    const int ks_idx = state_index_of(key_of(d));
    KeyState& ks = key_states[static_cast<size_t>(ks_idx)];
    switch (d.op) {
      case DeltaOp::kUpdate: {
        if (d.weight == 0) break;  // zero-weight elimination
        if (options_.dedupe_idempotent && is_duplicate(ks, d)) break;
        const int idx = static_cast<int>(entries.size());
        entries.push_back(Entry{std::move(d), true, -1});
        if (options_.dedupe_idempotent) ks.dups.push_back(idx);
        break;
      }
      case DeltaOp::kBatch: {
        // Already packed (should not reach a coalescer); pass through.
        entries.push_back(Entry{std::move(d), true, -1});
        break;
      }
      case DeltaOp::kInsert:
      case DeltaOp::kDelete:
      case DeltaOp::kReplace: {
        if (d.op == DeltaOp::kReplace) {
          REX_RETURN_NOT_OK(Contribute(&ks, std::move(d.old_tuple), -1));
          REX_RETURN_NOT_OK(Contribute(&ks, std::move(d.tuple), 1));
        } else {
          const int64_t w = d.SignedWeight();
          if (w == 0) break;
          if (options_.dedupe_idempotent) {
            // Idempotent set semantics: re-asserting a net-present tuple
            // (or re-deleting a net-absent one) is a no-op.
            const int64_t net = NetWeight(ks, d.tuple);
            if ((w > 0 && net > 0) || (w < 0 && net < 0)) break;
          }
          REX_RETURN_NOT_OK(Contribute(&ks, std::move(d.tuple), w));
        }
        if (ks.net.empty()) {
          if (ks.slot >= 0) {
            entries[static_cast<size_t>(ks.slot)].alive = false;
            ks.slot = -1;
          }
        } else if (ks.slot < 0) {
          ks.slot = static_cast<int>(entries.size());
          entries.push_back(Entry{Delta{}, true, ks_idx});
        }
        break;
      }
    }
  }

  DeltaVec out;
  out.reserve(entries.size());
  for (Entry& e : entries) {
    if (!e.alive) continue;
    if (e.render_of < 0) {
      out.push_back(std::move(e.d));
    } else {
      RenderNet(key_states[static_cast<size_t>(e.render_of)], &out);
    }
  }
  // Signed: a degenerate stream (several replaces of distinct tuples under
  // one key) can render more deltas than it consumed.
  const int64_t folded = std::max<int64_t>(
      0, static_cast<int64_t>(n_in) - static_cast<int64_t>(out.size()));

  if (options_.pack_runs && !options_.key_fields.empty()) {
    out = PackRuns(std::move(out));
  }

  if (stats != nullptr) {
    stats->deltas_in += static_cast<int64_t>(n_in);
    stats->deltas_out += static_cast<int64_t>(out.size());
    stats->folded += folded;
    const size_t bytes_out = TotalBytes(out);
    if (bytes_in > bytes_out) {
      stats->bytes_saved += static_cast<int64_t>(bytes_in - bytes_out);
    }
  }
  return out;
}

DeltaVec DeltaCoalescer::PackRuns(DeltaVec in) const {
  const size_t nkeys = options_.key_fields.size();

  // Group the stream per key; a key is packable only when every one of its
  // deltas is the same +()/δ() op over tuples of one arity wider than the
  // key (so the per-key payload sequence can be replayed exactly).
  struct KeyGroup {
    Tuple key;
    std::vector<size_t> members;
    bool packable = true;
    DeltaOp op = DeltaOp::kUpdate;
    size_t arity = 0;
  };
  // `all_groups` is a deque so KeyGroup addresses stay stable as groups are
  // added (the bucket map and `group_of` hold pointers into it).
  std::deque<KeyGroup> all_groups;
  std::unordered_map<uint64_t, std::vector<KeyGroup*>> groups;
  std::vector<KeyGroup*> group_of(in.size(), nullptr);

  for (size_t i = 0; i < in.size(); ++i) {
    const Delta& d = in[i];
    bool in_range = true;
    for (int kf : options_.key_fields) {
      if (kf < 0 || static_cast<size_t>(kf) >= d.tuple.size()) {
        in_range = false;
        break;
      }
    }
    if (!in_range) continue;  // never packed, never grouped
    Tuple key = d.tuple.Project(options_.key_fields);
    auto& chain = groups[key.Hash()];
    KeyGroup* g = nullptr;
    for (KeyGroup* cand : chain) {
      if (cand->key == key) {
        g = cand;
        break;
      }
    }
    if (g == nullptr) {
      all_groups.push_back(KeyGroup{std::move(key), {}, true,
                                    d.op, d.tuple.size()});
      g = &all_groups.back();
      chain.push_back(g);
    }
    g->members.push_back(i);
    group_of[i] = g;
    // Weighted deltas never pack: the payload list carries only field
    // values, so a non-unit multiplicity would be silently dropped on the
    // wire (the receiver re-expands every element at weight 1).
    const bool elem_ok = (d.op == DeltaOp::kInsert ||
                          d.op == DeltaOp::kUpdate) &&
                         d.old_tuple.empty() && d.weight == 1;
    if (!elem_ok || d.op != g->op || d.tuple.size() != g->arity ||
        g->arity <= nkeys) {
      g->packable = false;
    }
  }

  // Re-walking the group chains invalidates nothing: groups are stable now.
  DeltaVec out;
  out.reserve(in.size());
  std::vector<bool> consumed(in.size(), false);
  for (size_t i = 0; i < in.size(); ++i) {
    if (consumed[i]) continue;
    KeyGroup* g = group_of[i];
    if (g == nullptr || !g->packable || g->members.size() < 2) {
      out.push_back(std::move(in[i]));
      continue;
    }
    // Pack the whole key group at its first occurrence. Payload shape:
    // exactly one non-key field -> flat value per element; otherwise a
    // nested list of the non-key fields in ascending position order.
    std::vector<bool> is_key(g->arity, false);
    for (int kf : options_.key_fields) is_key[static_cast<size_t>(kf)] = true;
    const bool flat = (g->arity - nkeys == 1);
    size_t raw_bytes = 0;
    for (size_t m : g->members) raw_bytes += in[m].ByteSize();
    std::vector<Value> payload;
    payload.reserve(g->members.size());
    for (size_t m : g->members) {
      Tuple& t = in[m].tuple;
      if (flat) {
        for (size_t f = 0; f < g->arity; ++f) {
          if (!is_key[f]) {
            payload.push_back(t.field(f));
            break;
          }
        }
      } else {
        std::vector<Value> elem;
        elem.reserve(g->arity - nkeys);
        for (size_t f = 0; f < g->arity; ++f) {
          if (!is_key[f]) elem.push_back(t.field(f));
        }
        payload.push_back(Value::List(std::move(elem)));
      }
    }
    std::vector<Value> fields;
    fields.reserve(nkeys + 1);
    for (const Value& kv : g->key.fields()) fields.push_back(kv);
    fields.push_back(Value::List(std::move(payload)));
    // Header: [element op, original arity, key field positions...] — all the
    // receiver needs to replay the sequence without knowing the plan.
    std::vector<Value> header;
    header.reserve(2 + nkeys);
    header.push_back(Value(static_cast<int64_t>(g->op)));
    header.push_back(Value(static_cast<int64_t>(g->arity)));
    for (int kf : options_.key_fields) {
      header.push_back(Value(static_cast<int64_t>(kf)));
    }
    Delta packed;
    packed.op = DeltaOp::kBatch;
    packed.tuple = Tuple(std::move(fields));
    packed.old_tuple = Tuple(std::move(header));
    // Profitability gate: the batch header (element op, arity, key
    // positions) has a fixed cost, so short runs of narrow tuples can come
    // out LARGER packed than raw. Never inflate the wire — ship the run
    // as-is unless packing strictly shrinks it.
    if (packed.ByteSize() >= raw_bytes) {
      g->packable = false;
      out.push_back(std::move(in[i]));
      continue;
    }
    for (size_t m : g->members) consumed[m] = true;
    out.push_back(std::move(packed));
  }
  return out;
}

Result<DeltaVec> DeltaCoalescer::Expand(DeltaVec in) {
  bool any = false;
  for (const Delta& d : in) {
    if (d.op == DeltaOp::kBatch) {
      any = true;
      break;
    }
  }
  if (!any) return in;

  DeltaVec out;
  out.reserve(in.size());
  for (Delta& d : in) {
    if (d.op != DeltaOp::kBatch) {
      out.push_back(std::move(d));
      continue;
    }
    const Tuple& header = d.old_tuple;
    if (header.size() < 3) {
      return Status::DataLoss("batch delta header too short");
    }
    REX_ASSIGN_OR_RETURN(int64_t op_int, header.field(0).ToInt());
    REX_ASSIGN_OR_RETURN(int64_t arity_int, header.field(1).ToInt());
    if (op_int != static_cast<int64_t>(DeltaOp::kInsert) &&
        op_int != static_cast<int64_t>(DeltaOp::kUpdate)) {
      return Status::DataLoss("batch delta with non-insert/update op");
    }
    const DeltaOp elem_op = static_cast<DeltaOp>(op_int);
    const size_t arity = static_cast<size_t>(arity_int);
    const size_t num_keys = header.size() - 2;
    if (arity <= num_keys || d.tuple.size() != num_keys + 1) {
      return Status::DataLoss("batch delta shape mismatch");
    }
    std::vector<size_t> key_pos(num_keys);
    std::vector<bool> is_key(arity, false);
    for (size_t k = 0; k < num_keys; ++k) {
      REX_ASSIGN_OR_RETURN(int64_t kf, header.field(k + 2).ToInt());
      if (kf < 0 || static_cast<size_t>(kf) >= arity ||
          is_key[static_cast<size_t>(kf)]) {
        return Status::DataLoss("batch delta key position out of range");
      }
      key_pos[k] = static_cast<size_t>(kf);
      is_key[static_cast<size_t>(kf)] = true;
    }
    std::vector<size_t> payload_pos;
    payload_pos.reserve(arity - num_keys);
    for (size_t f = 0; f < arity; ++f) {
      if (!is_key[f]) payload_pos.push_back(f);
    }
    const Value& payload_field = d.tuple.field(num_keys);
    if (payload_field.type() != ValueType::kList) {
      return Status::DataLoss("batch delta payload is not a list");
    }
    const bool flat = (payload_pos.size() == 1);
    for (const Value& elem : payload_field.AsList()) {
      std::vector<Value> fields(arity);
      for (size_t k = 0; k < num_keys; ++k) {
        fields[key_pos[k]] = d.tuple.field(k);
      }
      if (flat) {
        fields[payload_pos[0]] = elem;
      } else {
        if (elem.type() != ValueType::kList ||
            elem.AsList().size() != payload_pos.size()) {
          return Status::DataLoss("batch delta payload element mismatch");
        }
        const std::vector<Value>& elem_fields = elem.AsList();
        for (size_t f = 0; f < payload_pos.size(); ++f) {
          fields[payload_pos[f]] = elem_fields[f];
        }
      }
      out.push_back(Delta{elem_op, Tuple(std::move(fields)), {}});
    }
  }
  return out;
}

}  // namespace rex
