// User-defined code: scalar UDFs, table-valued UDFs, user-defined
// aggregators (UDAs), and the four delta-handler forms of §3.3:
//
//   aggregate state:  DELTA[] AGGSTATE(OBJECT STATE, DELTA D)
//   aggregate result: DELTA[] AGGRESULT(OBJECT STATE)
//   join state:       DELTA[] UPDATE(TUPLESET LEFT, TUPLESET RIGHT, DELTA D)
//   while state:      DELTA[] UPDATE(TUPLESET WHILERELATION, DELTA D)
//
// The original REX resolves Java classes by name via reflection; here the
// registry resolves std::function-based definitions by name, mirroring how
// plans ship class names (not code) to workers. Typing information
// (inTypes/outTypes) accompanies each definition and is checked by the RQL
// analyzer.
#ifndef REX_EXEC_UDA_H_
#define REX_EXEC_UDA_H_

#include <functional>
#include <memory>
#include <string>

#include "common/delta.h"
#include "common/status.h"
#include "common/tuple.h"
#include "exec/tuple_set.h"

namespace rex {

/// Opaque per-group UDA state ("OBJECT STATE" in the paper).
struct UdaState {
  virtual ~UdaState() = default;
};

/// A scalar user-defined function: values in, one value out.
struct ScalarUdf {
  std::string name;
  std::vector<ValueType> in_types;
  ValueType out_type = ValueType::kNull;
  std::function<Result<Value>(const std::vector<Value>&)> fn;
  /// Deterministic functions are cached and reordered freely (§5.1).
  bool deterministic = true;
  /// Optimizer hints: per-call CPU cost and selectivity when used as a
  /// predicate (fraction of tuples passing).
  double cost_per_call = 1.0;
  double selectivity = 0.5;
};

/// A table-valued UDF for applyFunction: one input delta in, a bag of
/// output deltas out. May create/manipulate annotations arbitrarily (the
/// one stateless operator allowed to, §3.3).
struct TableUdf {
  std::string name;
  Schema in_schema;
  Schema out_schema;
  std::function<Result<DeltaVec>(const Delta&)> fn;
  /// Optional batched form; when set, the engine amortizes invocation
  /// overhead across a whole batch (§4.2 input batching).
  std::function<Result<DeltaVec>(const DeltaVec&)> batch_fn;
  bool deterministic = true;
  double cost_per_call = 1.0;
  double avg_fanout = 1.0;  // expected outputs per input
};

/// A user-defined aggregator: manages per-group state and defines what to
/// emit, both incrementally (agg_state) and at stratum end (agg_result).
struct Uda {
  std::string name;
  Schema in_schema;   // inTypes with attribute names
  Schema out_schema;  // outTypes
  std::function<std::unique_ptr<UdaState>()> init;
  /// Revises the group's state for one delta; may return intermediate
  /// deltas to emit immediately (streamed partial aggregation, §4.2).
  std::function<Result<DeltaVec>(UdaState*, const Delta&)> agg_state;
  /// Produces the group's final deltas once the stratum has finished.
  std::function<Result<DeltaVec>(UdaState*)> agg_result;

  /// Optional pre-aggregate (MapReduce "combiner"); §5.2 pushdown.
  std::string pre_agg;  // name of another registered Uda; empty if none
  /// Composable UDAs can be computed in parts and unioned (sum, avg — not
  /// median); composability licenses pushdown through arbitrary joins.
  bool composable = false;
  /// Multiply-compensation UDF for pre-aggregation on both sides of a
  /// multiplicative (non key-FK) join; empty if not provided (§5.2).
  std::string mult_fn;
  /// Linear UDAs commute with ℤ-set weights: applying a +()/-() delta of
  /// weight w is equivalent to w unit applications, so the group-by derives
  /// their weighted delta handler mechanically (the unit handler is
  /// replayed per multiplicity). Non-linear UDAs reject |weight| != 1 —
  /// there is no sound derivation for them. δ() weights are opaque either
  /// way: they reach agg_state untouched, payload semantics included.
  bool linear = false;

  double cost_per_tuple = 1.0;  // optimizer hint
};

/// Join-state delta handler: owns the per-key buckets of both join inputs
/// and decides how a delta revises them and what joins to emit.
struct JoinHandler {
  std::string name;
  Schema in_schema;   // delta tuple layout arriving on the delta input
  Schema out_schema;  // emitted delta layout
  /// update(leftBucket, rightBucket, delta) -> deltas. `left` is the bucket
  /// of the input the delta arrived on; `right` the opposite input's.
  std::function<Result<DeltaVec>(TupleSet* left, TupleSet* right,
                                 const Delta&)>
      update;
  double cost_per_tuple = 1.0;
};

/// While-state delta handler: revises the fixpoint operator's relation for
/// one incoming delta and returns the deltas to feed the next stratum.
struct WhileHandler {
  std::string name;
  /// update(whileRelation, delta) -> deltas (possibly empty).
  std::function<Result<DeltaVec>(TupleSet* relation, const Delta&)> update;
  /// True when the handler may revise its bucket WITHOUT propagating (e.g.
  /// PageRank accumulates sub-threshold diffs silently). Such arrivals are
  /// part of the state's Δ history, so checkpoints must include every
  /// arrival — not just the propagated Δ set — for replay to reproduce the
  /// state bit-for-bit. Handlers that leave this false promise that state
  /// changes only on arrivals they propagate.
  bool keeps_unpropagated_state = false;
};

}  // namespace rex

#endif  // REX_EXEC_UDA_H_
