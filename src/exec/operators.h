// The stateless / lightly-stateful pipeline operators: table scan, filter,
// project, applyFunction (table-valued UDF with caching and batching),
// union, and sink.
#ifndef REX_EXEC_OPERATORS_H_
#define REX_EXEC_OPERATORS_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/delta_batch.h"
#include "exec/coalesce.h"
#include "exec/expr.h"
#include "exec/operator.h"
#include "exec/tuple_set.h"
#include "exec/vectorized.h"

namespace rex {

/// Reads the worker's primary partition of a base table in stratum 0 and
/// punctuates. Scans feeding immutable operator state (a join's stored
/// side) participate in incremental-recovery reloads.
class ScanOp : public Operator {
 public:
  struct Params {
    std::string table;
    /// Punctuation to emit after the data (immutable inputs close their
    /// downstream port with kEndOfStream; so does the base case, which
    /// runs exactly once).
    Punctuation::Kind punct_kind = Punctuation::Kind::kEndOfStream;
    /// Participates in recovery reloads (rebuilds downstream immutable
    /// state for taken-over ranges).
    bool feeds_immutable = false;
  };

  ScanOp(int id, Params params) : Operator(id, 0), params_(std::move(params)) {}

  const char* name() const override { return "scan"; }
  Status Open(ExecContext* ctx) override;
  Status ConsumeDeltas(int port, DeltaVec deltas) override;
  Status StartStratum(int stratum) override;
  Status RecoveryReload() override;

  /// True when this scan's stratum-0 punctuation closes its downstream
  /// port (kEndOfStream).
  bool closes_stream() const {
    return params_.punct_kind == Punctuation::Kind::kEndOfStream;
  }

 private:
  Status EmitRows(std::vector<Tuple> rows);

  Params params_;
  std::shared_ptr<DistributedTable> table_;
};

/// σ: drops deltas whose tuple fails the predicate, applying the standard
/// delta rules for replacements (old/new may pass independently). When the
/// columnar plane is on, batches inside the fast-path domain evaluate the
/// predicate whole-column through a compiled plan (cached per column-type
/// signature); everything else takes the scalar row loop.
class FilterOp : public Operator {
 public:
  FilterOp(int id, ExprPtr predicate)
      : Operator(id, 1), predicate_(std::move(predicate)) {}

  const char* name() const override { return "filter"; }
  Status Open(ExecContext* ctx) override;
  Status ConsumeDeltas(int port, DeltaVec deltas) override;

 private:
  ExprPtr predicate_;

  bool columnar_ = false;
  /// Compile cache: one entry per column-type signature seen (in practice
  /// a filter sees exactly one schema). nullopt compiled form = this
  /// predicate cannot vectorize over that signature.
  std::vector<std::pair<std::vector<BatchColType>,
                        std::optional<CompiledPredicate>>>
      compiled_;
  Counter* batch_rows_ = nullptr;
  Counter* batch_batches_ = nullptr;
  Counter* batch_fallback_rows_ = nullptr;
};

/// π: maps each delta's tuple(s) through a list of expressions.
class ProjectOp : public Operator {
 public:
  ProjectOp(int id, std::vector<ExprPtr> exprs)
      : Operator(id, 1), exprs_(std::move(exprs)) {}

  const char* name() const override { return "project"; }
  Status ConsumeDeltas(int port, DeltaVec deltas) override;

 private:
  Result<Tuple> Apply(const Tuple& in) const;

  std::vector<ExprPtr> exprs_;
};

/// applyFunction: invokes a table-valued UDF on each delta. Stateless, but
/// may create or manipulate annotations arbitrarily (§3.3). Supports
/// deterministic-result caching (§5.1) and input batching (§4.2).
class ApplyFnOp : public Operator {
 public:
  ApplyFnOp(int id, std::string fn_name)
      : Operator(id, 1), fn_name_(std::move(fn_name)) {}

  const char* name() const override { return "applyFn"; }
  Status Open(ExecContext* ctx) override;
  Status ConsumeDeltas(int port, DeltaVec deltas) override;
  Status ResetTransientState() override;

 protected:
  Status OnAllPunct(const Punctuation& p) override;

 private:
  Status FlushBatch();
  Result<DeltaVec> Invoke(const DeltaVec& batch);

  std::string fn_name_;
  const TableUdf* fn_ = nullptr;
  size_t batch_size_ = 1;
  DeltaVec pending_;

  // Runtime monitoring (§5.1): per-UDF counters the optimizer's
  // cost-profile feedback reads ("udf.<name>.nanos/calls/in/out").
  Counter* udf_nanos_ = nullptr;
  Counter* udf_calls_ = nullptr;
  Counter* udf_in_ = nullptr;
  Counter* udf_out_ = nullptr;

  bool cache_enabled_ = false;
  struct CacheEntry {
    Delta input;
    DeltaVec outputs;
  };
  std::unordered_map<uint64_t, std::vector<CacheEntry>> cache_;
};

/// ∪: forwards deltas from any input; punctuation fires once all inputs
/// complete their waves.
class UnionOp : public Operator {
 public:
  UnionOp(int id, int num_inputs) : Operator(id, num_inputs) {}

  const char* name() const override { return "union"; }
  Status ConsumeDeltas(int port, DeltaVec deltas) override;
};

/// Terminal collector: applies deltas onto a result set the driver reads
/// after the query (the requestor's union of per-node results).
class SinkOp : public Operator {
 public:
  explicit SinkOp(int id) : Operator(id, 1) {}

  const char* name() const override { return "sink"; }
  Status ConsumeDeltas(int port, DeltaVec deltas) override;

  const TupleSet& results() const { return results_; }
  void ClearResults() { results_ = TupleSet(); }

 private:
  TupleSet results_;
};

/// Exchange (§3.2 "rehash"): re-partitions deltas among workers by the
/// hash of key fields under the query's partition snapshot, batching
/// cross-node messages. In broadcast mode every delta goes to all workers
/// (k-means centroid dissemination). Port 0 is the local pipeline input;
/// port 1 receives from the network (one punctuation per live worker ends
/// its wave).
class RehashOp : public Operator {
 public:
  struct Params {
    std::vector<int> key_fields;
    bool broadcast = false;
    /// Plan-declared promise that downstream application of this shuffle's
    /// +()/δ() deltas is idempotent (e.g. SSSP's min-keeping handler), so
    /// the coalescer may drop exact per-key repeats. Never set it for
    /// counting or summing consumers.
    bool idempotent_updates = false;
  };

  RehashOp(int id, Params params)
      : Operator(id, 2), params_(std::move(params)) {}

  const char* name() const override { return "rehash"; }
  Status Open(ExecContext* ctx) override;
  Status ConsumeDeltas(int port, DeltaVec deltas) override;
  Status ResetTransientState() override;
  Status OnMembershipChange() override;

 protected:
  Status OnPortWaveComplete(int port, const Punctuation& p) override;

 private:
  Status Route(Delta d);
  /// Routing tail shared by the scalar and columnar paths: `h` is the
  /// delta's PartitionHash.
  Status RouteHashed(Delta d, uint64_t h);
  Status FlushTo(int dest);
  Status FlushAll();
  /// Ships a coalesced run as an opaque packed payload (Message::WireCodec),
  /// delta-encoded against the previous run on this (sender, dest) edge when
  /// byte-profitable. Runs below the packing floor go out as plain deltas
  /// without touching the edge reference.
  Status SendWireRun(int dest, DeltaVec batch);

  Params params_;
  std::vector<DeltaVec> pending_;  // per destination worker
  size_t batch_size_ = 1024;

  /// Sender half of wire-run compression (EngineConfig::diff_wire_runs):
  /// the last raw serialized run per destination, which the next run
  /// delta-encodes against. Cleared whenever the receiver's mirror state
  /// may die (recovery reset, membership change), so fresh edges restart
  /// with a kRaw run.
  struct WireEdge {
    uint64_t run_seq = 0;
    uint64_t last_check = 0;
    std::string last_raw;
  };
  bool wire_diff_ = false;
  std::map<int, WireEdge> wire_edges_;
  Counter* run_raw_bytes_ = nullptr;
  Counter* run_compressed_bytes_ = nullptr;

  /// Engaged when EngineConfig::coalesce_deltas is on (and not broadcast):
  /// every FlushTo folds its buffer to the net batch and packs same-key
  /// runs; the receiving port expands them back.
  std::optional<DeltaCoalescer> coalescer_;
  Counter* deltas_coalesced_ = nullptr;
  Counter* coalesce_bytes_saved_ = nullptr;

  /// Columnar plane: partition hashes for an in-domain batch are computed
  /// column-at-a-time before routing (strings hash once per distinct
  /// interned value).
  bool columnar_ = false;
  Counter* batch_rows_ = nullptr;
  Counter* batch_batches_ = nullptr;
  Counter* batch_fallback_rows_ = nullptr;
};

}  // namespace rex

#endif  // REX_EXEC_OPERATORS_H_
