#include "exec/tuple_set.h"

#include <cstdio>
#include <cstdlib>

namespace rex {

namespace {
/// A negative field index fed into the size_t casts below wraps to a huge
/// offset, so every lookup silently missed (nullptr / nullopt) instead of
/// surfacing the caller's bug. Crash loudly instead.
void CheckFieldIndex(const char* what, int field) {
  if (field >= 0) return;
  std::fprintf(stderr, "TupleSet::%s: negative field index %d\n", what,
               field);
  std::fflush(stderr);
  std::abort();
}
}  // namespace

bool TupleSet::Remove(const Tuple& t) {
  for (auto it = tuples_.begin(); it != tuples_.end(); ++it) {
    if (*it == t) {
      tuples_.erase(it);
      return true;
    }
  }
  return false;
}

bool TupleSet::Replace(const Tuple& old_t, Tuple new_t) {
  for (Tuple& existing : tuples_) {
    if (existing == old_t) {
      existing = std::move(new_t);
      return true;
    }
  }
  return false;
}

bool TupleSet::ReplaceOrInsert(const Tuple& old_t, Tuple new_t) {
  for (Tuple& existing : tuples_) {
    if (existing == old_t) {
      existing = std::move(new_t);
      return true;
    }
  }
  tuples_.push_back(std::move(new_t));
  return false;
}

const Tuple* TupleSet::Find(const Value& key, int key_field) const {
  CheckFieldIndex("Find", key_field);
  for (const Tuple& t : tuples_) {
    if (t.size() > static_cast<size_t>(key_field) &&
        t.field(static_cast<size_t>(key_field)) == key) {
      return &t;
    }
  }
  return nullptr;
}

Tuple* TupleSet::Find(const Value& key, int key_field) {
  return const_cast<Tuple*>(
      static_cast<const TupleSet*>(this)->Find(key, key_field));
}

std::optional<Value> TupleSet::Get(const Value& key, int value_field,
                                   int key_field) const {
  CheckFieldIndex("Get", value_field);
  const Tuple* t = Find(key, key_field);
  if (t == nullptr || t->size() <= static_cast<size_t>(value_field)) {
    return std::nullopt;
  }
  return t->field(static_cast<size_t>(value_field));
}

std::optional<Value> TupleSet::Put(const Value& key, Value value) {
  Tuple* t = Find(key, 0);
  if (t != nullptr && t->size() >= 2) {
    Value old = t->field(1);
    t->field(1) = std::move(value);
    return old;
  }
  tuples_.push_back(Tuple{key, std::move(value)});
  return std::nullopt;
}

}  // namespace rex
