// Mixed workload from the paper's introduction: the same social-network
// data serves (a) an ad hoc OLAP join-aggregate ("followers per region")
// and (b) an iterative link-analysis job (delta PageRank finding the top
// influencers) — on one platform, without moving the data.
#include <algorithm>
#include <cstdio>

#include "algos/pagerank.h"
#include "rql/compiler.h"

using namespace rex;

int main() {
  // A Twitter-like follower graph: edge (src, dst) = src follows dst...
  // for PageRank we use "src endorses dst" semantics directly.
  GraphData graph = GenerateTwitterLike(0.05);
  std::printf("social graph: %lld users, %zu follow edges\n",
              static_cast<long long>(graph.num_vertices),
              graph.edges.size());

  EngineConfig config;
  config.num_workers = 4;
  Cluster cluster(config);
  if (!LoadGraphTables(&cluster, graph).ok()) return 1;

  // Users table: (v, region) — region data joined against the graph.
  std::vector<Tuple> users;
  Rng rng(7);
  for (int64_t v = 0; v < graph.num_vertices; ++v) {
    users.push_back(
        Tuple{Value(v), Value(static_cast<int64_t>(rng.NextBelow(5)))});
  }
  if (!cluster
           .CreateTable("users",
                        Schema{{"v", ValueType::kInt},
                               {"region", ValueType::kInt}},
                        0, users)
           .ok()) {
    return 1;
  }

  rql::CompileContext ctx;
  ctx.storage = cluster.storage();
  ctx.udfs = cluster.udfs();

  // ---- (a) ad hoc OLAP: follow edges per region of the followed user.
  auto olap = rql::CompileRql(
      "SELECT region, count(*) FROM graph, users "
      "WHERE graph.dst = users.v GROUP BY region",
      ctx);
  if (!olap.ok()) {
    std::fprintf(stderr, "olap: %s\n", olap.status().ToString().c_str());
    return 1;
  }
  auto olap_run = cluster.Run(olap->spec);
  if (!olap_run.ok()) return 1;
  std::printf("\nfollows per region (join tree %s):\n",
              olap->decisions.join_tree.c_str());
  std::vector<Tuple> rows = olap_run->results;
  std::sort(rows.begin(), rows.end());
  for (const Tuple& row : rows) {
    std::printf("  region %lld: %lld follows\n",
                static_cast<long long>(row.field(0).AsInt()),
                static_cast<long long>(row.field(1).AsInt()));
  }

  // ---- (b) iterative link analysis: delta PageRank, implicit fixpoint.
  PageRankConfig pr;
  pr.threshold = 0.005;
  pr.relative = true;
  if (!RegisterPageRankUdfs(cluster.udfs(), pr).ok()) return 1;
  auto plan = BuildPageRankDeltaPlan(pr);
  if (!plan.ok()) return 1;
  auto run = cluster.Run(*plan);
  if (!run.ok()) {
    std::fprintf(stderr, "pagerank: %s\n", run.status().ToString().c_str());
    return 1;
  }
  auto ranks = RanksFromState(run->fixpoint_state, graph.num_vertices);
  if (!ranks.ok()) return 1;

  std::vector<std::pair<double, int64_t>> top;
  for (size_t v = 0; v < ranks->size(); ++v) {
    top.push_back({(*ranks)[v], static_cast<int64_t>(v)});
  }
  std::partial_sort(top.begin(), top.begin() + 5, top.end(),
                    std::greater<>());
  std::printf("\ntop influencers after %d delta iterations:\n",
              run->strata_executed - 1);
  for (int i = 0; i < 5; ++i) {
    std::printf("  user %lld  rank %.4f\n",
                static_cast<long long>(top[static_cast<size_t>(i)].second),
                top[static_cast<size_t>(i)].first);
  }
  std::printf("\nΔ-set sizes per iteration:");
  for (const StratumReport& s : run->strata) {
    if (s.stratum > 0) {
      std::printf(" %lld", static_cast<long long>(s.stats.new_tuples));
    }
  }
  std::printf("\n");
  return 0;
}
