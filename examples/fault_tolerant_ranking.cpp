// Fault tolerance demo (§4.3, §6.6): a long-running delta PageRank loses
// a worker mid-query. The incremental strategy restores the failed
// range's state from the replicated Δ-set checkpoints and resumes at the
// interrupted stratum; the restart strategy repeats everything. Both give
// exactly the no-failure answer.
#include <cmath>
#include <cstdio>

#include "algos/pagerank.h"

using namespace rex;

namespace {

Result<std::pair<double, std::vector<double>>> RunOnce(
    const GraphData& graph, FailureInjection failure) {
  EngineConfig config;
  config.num_workers = 4;
  config.replication = 3;
  Cluster cluster(config);
  REX_RETURN_NOT_OK(LoadGraphTables(&cluster, graph));
  PageRankConfig pr;
  pr.threshold = 1e-6;
  REX_RETURN_NOT_OK(RegisterPageRankUdfs(cluster.udfs(), pr));
  REX_ASSIGN_OR_RETURN(PlanSpec plan, BuildPageRankDeltaPlan(pr));
  QueryOptions options;
  options.failure = failure;
  REX_ASSIGN_OR_RETURN(QueryRunResult run, cluster.Run(plan, options));
  REX_ASSIGN_OR_RETURN(std::vector<double> ranks,
                       RanksFromState(run.fixpoint_state,
                                      graph.num_vertices));
  std::printf("  %-12s %2d strata, %.3fs, checkpoint volume %lld bytes\n",
              failure.worker < 0
                  ? "no-failure:"
                  : (failure.strategy == RecoveryStrategy::kIncremental
                         ? "incremental:"
                         : "restart:"),
              run.strata_executed, run.total_seconds,
              static_cast<long long>(
                  cluster.checkpoints()->metrics().Value(
                      metrics::kCheckpointBytes)));
  return std::make_pair(run.total_seconds, std::move(ranks));
}

}  // namespace

int main() {
  GraphData graph = GenerateDbpediaLike(0.08);
  std::printf("delta PageRank on %lld vertices; killing worker 2 before "
              "iteration 40\n",
              static_cast<long long>(graph.num_vertices));

  auto baseline = RunOnce(graph, FailureInjection{});
  if (!baseline.ok()) return 1;

  FailureInjection failure;
  failure.worker = 2;
  failure.before_stratum = 40;

  failure.strategy = RecoveryStrategy::kIncremental;
  auto incremental = RunOnce(graph, failure);
  if (!incremental.ok()) return 1;

  failure.strategy = RecoveryStrategy::kRestart;
  auto restart = RunOnce(graph, failure);
  if (!restart.ok()) return 1;

  double max_diff = 0;
  for (size_t v = 0; v < baseline->second.size(); ++v) {
    max_diff = std::max(max_diff, std::fabs(baseline->second[v] -
                                            incremental->second[v]));
  }
  std::printf("max |rank difference| incremental vs no-failure: %.2e\n",
              max_diff);
  std::printf("incremental recovered %.1f%% faster than restart\n",
              100.0 * (restart->first - incremental->first) /
                  restart->first);
  return max_diff < 1e-6 ? 0 : 1;
}
