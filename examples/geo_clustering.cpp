// Geo clustering: delta K-means over 2-D coordinates (the paper's
// Listing 3 workload). The fixpoint holds the centroids; only points that
// switch clusters ever re-aggregate, so late iterations process a few
// stragglers instead of the whole dataset.
#include <cstdio>

#include "algos/kmeans.h"

using namespace rex;

int main() {
  GeoGenOptions geo;
  geo.num_base_points = 20000;
  geo.num_clusters = 10;
  geo.cluster_stddev = 0.6;
  geo.seed = 99;
  std::vector<Tuple> points = GenerateGeoPoints(geo);
  std::printf("clustering %zu geo points into %d clusters\n", points.size(),
              geo.num_clusters);

  EngineConfig config;
  config.num_workers = 4;
  Cluster cluster(config);
  if (!LoadPointsTable(&cluster, points).ok()) return 1;
  KMeansConfig cfg;
  cfg.k = geo.num_clusters;
  if (!RegisterKMeansUdfs(cluster.udfs(), cfg).ok()) return 1;
  auto plan = BuildKMeansDeltaPlan(cfg);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  auto run = cluster.Run(*plan);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  auto centroids = CentroidsFromState(run->fixpoint_state);
  if (!centroids.ok()) return 1;

  std::printf("converged in %d iterations; centroids moved per iteration:",
              run->strata_executed - 1);
  for (const StratumReport& s : run->strata) {
    if (s.stratum > 0) {
      std::printf(" %lld", static_cast<long long>(s.stats.new_tuples));
    }
  }
  std::printf("\ncentroids:\n");
  for (size_t c = 0; c < centroids->size(); ++c) {
    std::printf("  c%-2zu (%8.3f, %8.3f)\n", c, (*centroids)[c].first,
                (*centroids)[c].second);
  }
  return 0;
}
