// Road-network reachability: single-source shortest path written in RQL
// (the paper's Listing 2 pattern) with a user-registered while-state delta
// handler. Shows the "improved accuracy" behavior of §6.3: the delta
// engine runs ALL hops to exact full reachability, and post-frontier
// iterations are nearly free.
#include <cstdio>

#include "algos/pagerank.h"  // LoadGraphTables
#include "algos/sssp.h"
#include "rql/compiler.h"

using namespace rex;

int main() {
  GraphData graph = GenerateDbpediaLike(0.1);
  std::printf("network: %lld junctions, %zu road segments\n",
              static_cast<long long>(graph.num_vertices),
              graph.edges.size());

  EngineConfig config;
  config.num_workers = 4;
  Cluster cluster(config);
  if (!LoadGraphTables(&cluster, graph).ok()) return 1;

  SsspConfig cfg;
  cfg.source = 0;
  if (!RegisterSsspUdfs(cluster.udfs(), cfg).ok()) return 1;

  // Listing-2-style RQL: the SPJoin handler expands the frontier, min()
  // merges candidates per junction, SPFix keeps only improvements.
  rql::CompileContext ctx;
  ctx.storage = cluster.storage();
  ctx.udfs = cluster.udfs();
  auto compiled = rql::CompileRql(
      "WITH SP (v, dist) AS ("
      "  SELECT v, 0 FROM vertices WHERE v = 0"
      ") UNION UNTIL FIXPOINT BY v USING SPFix ("
      "  SELECT nbr, min(cand) FROM ("
      "    SELECT SPJoin(v, dist).{nbr, cand}"
      "    FROM graph, SP WHERE graph.src = SP.v GROUP BY src)"
      "  GROUP BY nbr)",
      ctx);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }

  auto run = cluster.Run(compiled->spec);
  if (!run.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
    return 1;
  }
  auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
  if (!dist.ok()) return 1;

  // Reachability histogram by hop count.
  std::vector<int64_t> histogram;
  int64_t reached = 0;
  for (int64_t d : *dist) {
    if (d < 0) continue;
    ++reached;
    if (static_cast<size_t>(d) >= histogram.size()) {
      histogram.resize(static_cast<size_t>(d) + 1, 0);
    }
    histogram[static_cast<size_t>(d)] += 1;
  }
  std::printf("reached %lld / %lld junctions in %d hops\n",
              static_cast<long long>(reached),
              static_cast<long long>(graph.num_vertices),
              run->strata_executed - 1);
  for (size_t h = 0; h < histogram.size(); ++h) {
    std::printf("  %2zu hops: %6lld junctions   (iteration cost %.4fs, "
                "frontier %lld)\n",
                h, static_cast<long long>(histogram[h]),
                h + 1 < run->strata.size() ? run->strata[h + 1].seconds
                                           : 0.0,
                h + 1 < run->strata.size()
                    ? static_cast<long long>(
                          run->strata[h + 1].stats.new_tuples)
                    : 0LL);
  }
  return 0;
}
