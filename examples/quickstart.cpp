// Quickstart: stand up a REX cluster, load a table, run an RQL query.
//
//   $ ./example_quickstart
//
// Demonstrates the three-step public API:
//   1. Cluster        — the shared-nothing runtime (workers, network,
//                       storage, checkpoints)
//   2. CompileRql     — RQL -> optimized physical plan
//   3. Cluster::Run   — stratified execution, results at the requestor
#include <cstdio>

#include "cluster/cluster.h"
#include "data/generators.h"
#include "rql/compiler.h"

using namespace rex;

int main() {
  // A 4-worker cluster with replication factor 3 (the paper's setup,
  // scaled to threads).
  EngineConfig config;
  config.num_workers = 4;
  Cluster cluster(config);

  // Load a TPC-H-like lineitem table, partitioned by orderkey.
  LineitemGenOptions gen;
  gen.num_rows = 50000;
  Status st = cluster.CreateTable(
      "lineitem",
      Schema{{"orderkey", ValueType::kInt},
             {"linenumber", ValueType::kInt},
             {"quantity", ValueType::kDouble},
             {"extendedprice", ValueType::kDouble},
             {"tax", ValueType::kDouble}},
      /*key_column=*/0, GenerateLineitem(gen));
  if (!st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }

  // Compile the paper's Figure-4 query. The optimizer picks the plan:
  // scan -> filter -> local combiner -> gather -> final aggregate.
  rql::CompileContext ctx;
  ctx.storage = cluster.storage();
  ctx.udfs = cluster.udfs();
  ctx.calibration = ClusterCalibration::Uniform(config.num_workers);
  auto compiled = rql::CompileRql(
      "SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1", ctx);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("optimizer: combiner pushdown = %s\n",
              compiled->decisions.preagg_combiner ? "yes" : "no");
  std::printf("physical plan:\n%s", compiled->spec.ToString().c_str());

  auto run = cluster.Run(compiled->spec);
  if (!run.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
    return 1;
  }
  for (const Tuple& row : run->results) {
    std::printf("sum(tax) = %.2f   count(*) = %lld\n",
                row.field(0).AsDouble(),
                static_cast<long long>(row.field(1).AsInt()));
  }
  std::printf("done in %.3fs across %d workers\n", run->total_seconds,
              config.num_workers);
  return 0;
}
